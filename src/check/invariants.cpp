#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "check/digest.hpp"

namespace ibridge::check {

using core::CacheClass;
using core::CacheEntry;
using core::EntryId;
using core::MappingTable;
using sim::Bytes;
using sim::Offset;

namespace {

// Relative tolerance for the incrementally maintained return sums (they
// accumulate fp error against a fresh recompute).
bool near(double a, double b) {
  return std::abs(a - b) <= 1e-6 * std::max({1.0, std::abs(a), std::abs(b)});
}

void fail(std::vector<std::string>& out, const std::string& msg) {
  out.push_back(msg);
}

std::string entry_str(EntryId id, const CacheEntry& e) {
  std::ostringstream ss;
  ss << "entry " << id << " (file " << e.file << " [" << e.file_off.value()
     << "," << e.file_end().value() << ") log [" << e.log_off.value() << ","
     << (e.log_off + e.length).value() << ") " << to_string(e.klass)
     << (e.dirty ? " dirty" : " clean") << ")";
  return ss.str();
}

}  // namespace

std::vector<std::string> verify_table(const MappingTable& t) {
  std::vector<std::string> out;

  const auto ids = t.all_entries();
  if (ids.size() != t.entry_count()) {
    fail(out, "all_entries()/entry_count() disagree: " +
                  std::to_string(ids.size()) + " vs " +
                  std::to_string(t.entry_count()));
  }

  // Per-class LRU lists must partition the entries and reproduce the
  // byte / return accounting.
  std::size_t lru_total = 0;
  for (int ci = 0; ci < core::kNumClasses; ++ci) {
    const auto c = static_cast<CacheClass>(ci);
    const auto order = t.lru_order(c);
    lru_total += order.size();
    if (order.size() != t.entry_count(c)) {
      fail(out, std::string("LRU list size mismatch for class ") +
                    to_string(c));
    }
    Bytes bytes = Bytes::zero();
    double ret = 0.0;
    for (EntryId id : order) {
      if (!t.contains(id)) {
        fail(out, "LRU list references missing entry " + std::to_string(id));
        continue;
      }
      const CacheEntry& e = t.get(id);
      if (e.klass != c) {
        fail(out, entry_str(id, e) + " filed in the wrong class LRU");
      }
      bytes += e.length;
      ret += e.ret_ms;
    }
    if (bytes != t.bytes_cached(c)) {
      fail(out, std::string("bytes_cached(") + to_string(c) +
                    ") diverged: recomputed " + std::to_string(bytes.count()) +
                    " vs reported " +
                    std::to_string(t.bytes_cached(c).count()));
    }
    if (!near(ret, t.return_sum(c))) {
      fail(out, std::string("return_sum(") + to_string(c) + ") diverged");
    }
  }
  if (lru_total != t.entry_count()) {
    fail(out, "LRU lists do not partition the entry set");
  }

  // Entry sanity, dirty accounting, per-file non-overlap (all_entries is
  // file/offset ordered), and coverage round trip.
  Bytes dirty = Bytes::zero();
  std::vector<std::pair<Offset, Bytes>> log_ranges;
  log_ranges.reserve(ids.size());
  const CacheEntry* prev = nullptr;
  for (EntryId id : ids) {
    const CacheEntry& e = t.get(id);
    if (e.length <= Bytes::zero() || e.file == fsim::kInvalidFile ||
        e.log_off < Offset::zero()) {
      fail(out, entry_str(id, e) + " is malformed");
      continue;
    }
    if (e.dirty) dirty += e.length;
    log_ranges.emplace_back(e.log_off, e.length);
    if (prev && prev->file == e.file && prev->file_end() > e.file_off) {
      fail(out, entry_str(id, e) + " overlaps its file predecessor");
    }
    prev = &e;

    const auto cov = t.coverage(e.file, e.file_off, e.length);
    if (cov.size() != 1 || cov[0].entry != id || cov[0].log_off != e.log_off ||
        cov[0].length != e.length) {
      fail(out, entry_str(id, e) + " does not round-trip through coverage()");
    }
  }
  if (dirty != t.dirty_bytes()) {
    fail(out, "dirty_bytes diverged: recomputed " +
                  std::to_string(dirty.count()) + " vs reported " +
                  std::to_string(t.dirty_bytes().count()));
  }
  if (t.dirty_bytes() < Bytes::zero() ||
      t.dirty_bytes() > t.bytes_cached()) {
    fail(out, "dirty_bytes outside [0, bytes_cached]");
  }

  // Log ranges never overlap.
  std::sort(log_ranges.begin(), log_ranges.end());
  for (std::size_t i = 1; i < log_ranges.size(); ++i) {
    if (log_ranges[i - 1].first + log_ranges[i - 1].second >
        log_ranges[i].first) {
      fail(out, "log ranges overlap at log offset " +
                    std::to_string(log_ranges[i].first.value()));
    }
  }

  return out;
}

std::vector<std::string> verify_cache(const core::IBridgeCache& c,
                                      bool quiescent) {
  std::vector<std::string> out = verify_table(c.table());

  const core::MappingTable& t = c.table();
  const core::SsdLog& log = c.log();

  // Byte conservation between table and log.  In-flight admissions and
  // background staging hold log space before their table insert, so the
  // running invariant is <=; at quiescence they must agree exactly.
  if (t.bytes_cached() > log.live_bytes()) {
    fail(out, "table claims " + std::to_string(t.bytes_cached().count()) +
                  " bytes but the log holds only " +
                  std::to_string(log.live_bytes().count()));
  }
  if (quiescent && t.bytes_cached() != log.live_bytes()) {
    fail(out, "table/log bytes diverged at quiescence: " +
                  std::to_string(t.bytes_cached().count()) + " vs " +
                  std::to_string(log.live_bytes().count()));
  }
  if (log.live_bytes() < Bytes::zero() ||
      log.live_bytes() > log.capacity()) {
    fail(out, "log live bytes outside [0, capacity]");
  }
  // Free segments hold no live data, so live bytes must fit the rest.
  const Bytes non_free_capacity =
      log.capacity() -
      static_cast<std::int64_t>(log.free_segment_count()) *
          log.segment_bytes();
  if (log.live_bytes() > non_free_capacity) {
    fail(out, "log live bytes exceed non-free segment capacity");
  }

  // Per-segment agreement: the summed lengths of the entries mapped into a
  // segment never exceed its live count (equality at quiescence), and no
  // entry straddles a segment boundary (append never splits).
  const Bytes seg_bytes = log.segment_bytes();
  for (int seg = 0; seg < log.segment_count(); ++seg) {
    const auto [b, e] = log.segment_range(seg);
    Bytes mapped = Bytes::zero();
    for (EntryId id : t.entries_in_log_range(b, e)) {
      const CacheEntry& ent = t.get(id);
      if (ent.log_off / seg_bytes !=
          (ent.log_off + ent.length - Bytes{1}) / seg_bytes) {
        fail(out, entry_str(id, ent) + " straddles a log segment boundary");
      }
      mapped +=
          std::min(ent.log_off + ent.length, e) - std::max(ent.log_off, b);
    }
    if (mapped > log.segment_live(seg)) {
      fail(out, "segment " + std::to_string(seg) + " maps " +
                    std::to_string(mapped.count()) +
                    " table bytes but reports " +
                    std::to_string(log.segment_live(seg).count()) + " live");
    }
    if (quiescent && mapped != log.segment_live(seg)) {
      fail(out, "segment " + std::to_string(seg) +
                    " live count diverged at quiescence");
    }
  }

  // Entries must fit the log file.
  for (EntryId id : t.all_entries()) {
    const CacheEntry& ent = t.get(id);
    if (ent.log_off + ent.length > Offset::zero() + log.capacity()) {
      fail(out, entry_str(id, ent) + " maps past the log capacity");
    }
  }

  // Partition: the two class quotas tile the capacity exactly.
  const auto& part = c.partition();
  const Bytes qr = part.quota(t, CacheClass::kRegular);
  const Bytes qf = part.quota(t, CacheClass::kFragment);
  if (qr < Bytes::zero() || qf < Bytes::zero() || qr > part.capacity() ||
      qf > part.capacity()) {
    fail(out, "partition quota outside [0, capacity]");
  }
  if (qr + qf != part.capacity()) {
    fail(out, "partition quotas do not tile the capacity: " +
                  std::to_string(qr.count()) + " + " +
                  std::to_string(qf.count()) + " != " +
                  std::to_string(part.capacity().count()));
  }

  return out;
}

std::vector<std::string> verify_recovered_table(const MappingTable& t,
                                                Bytes log_capacity,
                                                Bytes segment_bytes) {
  std::vector<std::string> out = verify_table(t);
  for (EntryId id : t.all_entries()) {
    const CacheEntry& e = t.get(id);
    if (e.log_off + e.length > Offset::zero() + log_capacity) {
      fail(out, entry_str(id, e) + " maps past the recovered log capacity");
    }
    if (segment_bytes > Bytes::zero() &&
        e.log_off / segment_bytes !=
            (e.log_off + e.length - Bytes{1}) / segment_bytes) {
      fail(out, entry_str(id, e) + " straddles a recovered segment boundary");
    }
  }
  return out;
}

std::uint64_t table_digest(const MappingTable& t) {
  Digest d;
  for (EntryId id : t.all_entries()) {
    const CacheEntry& e = t.get(id);
    d.update_u64(e.file)
        .update_i64(e.file_off.value())
        .update_i64(e.length.count())
        .update_i64(e.log_off.value())
        .update_u64(e.dirty ? 1 : 0)
        .update_u64(static_cast<std::uint64_t>(e.klass));
    double ret = e.ret_ms;
    std::uint64_t bits;
    std::memcpy(&bits, &ret, sizeof bits);
    d.update_u64(bits);
  }
  // LRU order matters for recovery equivalence (it decides future victims),
  // but ids are assigned per-instance: fold in each entry's identity by
  // content position instead of raw id.
  for (int ci = 0; ci < core::kNumClasses; ++ci) {
    d.update_u64(0x4c525500ULL + static_cast<std::uint64_t>(ci));  // "LRU"+class
    for (EntryId id : t.lru_order(static_cast<CacheClass>(ci))) {
      const CacheEntry& e = t.get(id);
      d.update_u64(e.file)
          .update_i64(e.file_off.value())
          .update_i64(e.length.count());
    }
  }
  d.update_i64(t.bytes_cached().count())
      .update_i64(t.dirty_bytes().count())
      .update_u64(t.entry_count());
  return d.value();
}

void InvariantOracle::on_check(const core::IBridgeCache& cache,
                               const char* where) {
  // Run the (pure, cache-local) audit outside the lock; only the shared
  // bookkeeping below is serialized.
  std::vector<std::string> violations = verify_cache(cache);
  const void* clock = &cache.simulator();
  const std::int64_t now_ns = cache.simulator().now().ns();

  std::lock_guard<std::mutex> lk(mu_);
  ++checks_;
  if (failures_.size() >= kMaxFailures) return;

  // Monotone simulator time across every observed step of one clock domain.
  auto [it, fresh] = last_now_ns_.try_emplace(clock, now_ns);
  if (!fresh) {
    if (now_ns < it->second) {
      failures_.push_back(std::string(where) +
                          ": simulator time ran backwards");
    }
    it->second = now_ns;
  }

  for (auto& v : violations) {
    if (failures_.size() >= kMaxFailures) break;
    failures_.push_back(std::string(where) + ": " + std::move(v));
  }
}

}  // namespace ibridge::check
