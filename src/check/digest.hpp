// Streaming 64-bit content digest for SimCheck.
//
// FNV-1a over the bytes with a SplitMix64 avalanche finalizer — not
// cryptographic, but order-sensitive and stable across platforms, which is
// what the differential and determinism harnesses need: two runs produce the
// same digest iff they produced the same byte stream in the same order.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace ibridge::check {

class Digest {
 public:
  Digest& update(std::span<const std::byte> bytes) {
    for (std::byte b : bytes) {
      state_ ^= static_cast<std::uint64_t>(b);
      state_ *= kPrime;
    }
    return *this;
  }

  Digest& update(std::string_view s) {
    for (char c : s) {
      state_ ^= static_cast<std::uint8_t>(c);
      state_ *= kPrime;
    }
    return *this;
  }

  /// Mix in an integral value (little-endian byte order independent: the
  /// value is folded in as 8 explicit bytes).
  Digest& update_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= (v >> (8 * i)) & 0xff;
      state_ *= kPrime;
    }
    return *this;
  }

  Digest& update_i64(std::int64_t v) {
    return update_u64(static_cast<std::uint64_t>(v));
  }

  /// Finalized value (the running state stays usable for further updates).
  std::uint64_t value() const {
    std::uint64_t z = state_ + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t state_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

}  // namespace ibridge::check
