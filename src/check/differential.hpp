// SimCheck pillar 3: differential policy checking and determinism.
//
// run_case() replays a generated workload through a cluster, driving
// Client::read_at / write_at with deterministic payload bytes and checking
// read-your-writes against a reference image on every read.  The returned
// report digests everything observable: the bytes every read returned, the
// final on-storage image, and the stats counters.
//
// run_differential() executes one case under disk-only, SSD-only and
// iBridge storage and asserts payload equivalence (reads and final image
// must be bit-identical across policies — storage policy is a performance
// decision, never a correctness one) while recording the timing divergence
// the policies are supposed to produce.
//
// check_determinism() runs one (case, policy) twice on fresh clusters and
// compares event counts and digests bit-for-bit: the simulation must be a
// pure function of its configuration.
#pragma once

#include <cstdint>
#include <string>

#include "check/generator.hpp"
#include "check/invariants.hpp"
#include "cluster/cluster.hpp"
#include "sim/time.hpp"

namespace ibridge::check {

/// Everything observable from one workload execution.
struct RunReport {
  Policy policy = Policy::kIBridge;
  std::uint64_t payload_digest = 0;  ///< all bytes returned by reads, in order
  std::uint64_t image_digest = 0;    ///< final file contents after drain()
  std::uint64_t stats_digest = 0;    ///< counters + timing, for determinism
  std::uint64_t events = 0;          ///< simulator events executed by the run
  sim::SimTime io_elapsed{};         ///< access phase
  sim::SimTime total_elapsed{};      ///< access + write-back drain
  std::uint64_t requests = 0;
  bool read_your_writes_ok = true;
  /// FaultEngine::digest() for the run; 0 on healthy runs.  Folded into
  /// stats_digest only when `faulted`, so healthy digests are unchanged.
  std::uint64_t fault_digest = 0;
  bool faulted = false;
  std::string failure;               ///< empty == clean run

  bool ok() const { return failure.empty() && read_your_writes_ok; }
};

/// Replay `c` on `cluster` (which must have been built from
/// make_config(c, p)).  `file_name` must be unique per (cluster, case) so a
/// long-lived cluster creates a fresh zero-filled file per case; empty
/// derives one from the seed.  When `obs` is non-null it is installed for
/// the duration of the run (iBridge clusters only; no-op otherwise).
RunReport run_case(cluster::Cluster& cluster, const FuzzCase& c, Policy p,
                   core::CacheObserver* obs = nullptr,
                   const std::string& file_name = {});

/// Cross-policy comparison of one case.
struct DiffReport {
  RunReport disk;
  RunReport ibridge;
  RunReport ssd;
  bool payload_equal = false;       ///< read + image digests agree everywhere
  double max_rel_time_gap = 0.0;    ///< max pairwise |dt|/min(t) divergence
  std::string failure;              ///< empty == equivalence holds

  bool ok() const { return failure.empty(); }
};

/// Run `c` under all three policies on the given clusters (each built from
/// the matching make_config flavour; reusing long-lived clusters across
/// cases is supported and cheap).  The iBridge run carries an
/// InvariantOracle and a quiescent audit after drain.
DiffReport run_differential(cluster::Cluster& disk, cluster::Cluster& ib,
                            cluster::Cluster& ssd, const FuzzCase& c,
                            const std::string& file_name = {});

/// Convenience: build three fresh clusters for `c` and compare.
DiffReport run_differential(const FuzzCase& c);

/// Same seed, fresh clusters, twice: every digest and count must match.
struct DeterminismReport {
  RunReport first;
  RunReport second;
  bool identical = false;
  std::string failure;  ///< empty == bit-identical

  bool ok() const { return failure.empty(); }
};

DeterminismReport check_determinism(const FuzzCase& c,
                                    Policy p = Policy::kIBridge);

}  // namespace ibridge::check
