#include "pvfs/layout.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace ibridge::pvfs {

std::int64_t StripingLayout::server_share(std::int64_t file_size,
                                          int server) const {
  assert(server >= 0 && server < servers_);
  if (file_size <= 0) return 0;
  const std::int64_t full_stripes = file_size / unit_;
  const std::int64_t rem = file_size % unit_;
  const std::int64_t rounds = full_stripes / servers_;
  const std::int64_t extra = full_stripes % servers_;
  std::int64_t share = rounds * unit_;
  if (server < extra) share += unit_;
  if (server == static_cast<int>(extra) && rem > 0) share += rem;
  return share;
}

std::vector<SubRequestSpec> StripingLayout::decompose(
    std::int64_t offset, std::int64_t length) const {
  assert(offset >= 0 && length > 0);
  std::vector<SubRequestSpec> out;
  std::int64_t pos = offset;
  std::int64_t remaining = length;
  while (remaining > 0) {
    const std::int64_t in_unit = pos % unit_;
    const std::int64_t take = std::min(remaining, unit_ - in_unit);
    SubRequestSpec s;
    s.server = server_of(pos);
    s.logical_offset = pos;
    s.server_offset = server_offset_of(pos);
    s.length = take;
    // Coalesce with the previous piece when contiguous on the same server's
    // datafile (happens when servers_ == 1: consecutive stripes collapse).
    if (!out.empty() && out.back().server == s.server &&
        out.back().server_offset + out.back().length == s.server_offset &&
        out.back().logical_offset + out.back().length == s.logical_offset) {
      out.back().length += take;
    } else {
      out.push_back(s);
    }
    pos += take;
    remaining -= take;
  }
  return out;
}

std::vector<SubRequestSpec> StripingLayout::decompose_per_server(
    std::int64_t offset, std::int64_t length) const {
  auto pieces = decompose(offset, length);
  // Merge pieces per server, keeping the first piece's offsets and summing
  // lengths.  Preserve first-touch order.
  std::vector<SubRequestSpec> out;
  std::map<int, std::size_t> index;
  for (const auto& p : pieces) {
    auto [it, inserted] = index.emplace(p.server, out.size());
    if (inserted) {
      out.push_back(p);
    } else {
      out[it->second].length += p.length;
    }
  }
  return out;
}

}  // namespace ibridge::pvfs
