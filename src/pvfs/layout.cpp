#include "pvfs/layout.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>

namespace ibridge::pvfs {

Bytes StripingLayout::server_share(Bytes file_size, ServerId server) const {
  assert(server.index() >= 0 && server.index() < servers_);
  if (file_size <= Bytes::zero()) return Bytes::zero();
  const std::int64_t full_stripes = file_size / unit_;
  const Bytes rem = file_size % unit_;
  const std::int64_t rounds = full_stripes / servers_;
  const std::int64_t extra = full_stripes % servers_;
  Bytes share = rounds * unit_;
  if (server.index() < extra) share += unit_;
  if (server.index() == static_cast<int>(extra) && rem > Bytes::zero()) {
    share += rem;
  }
  return share;
}

std::vector<SubRequestSpec> StripingLayout::decompose(Offset offset,
                                                      Bytes length) const {
  std::vector<SubRequestSpec> out;
  decompose_into(offset, length, out);
  return out;
}

// lint: no-alloc
void StripingLayout::decompose_into(Offset offset, Bytes length,
                                    std::vector<SubRequestSpec>& out) const {
  assert(offset >= Offset::zero() && length > Bytes::zero());
  out.clear();
  Offset pos = offset;
  Bytes remaining = length;
  while (remaining > Bytes::zero()) {
    const Bytes in_unit = pos % unit_;
    const Bytes take = std::min(remaining, unit_ - in_unit);
    SubRequestSpec s;
    s.server = server_of(pos);
    s.logical_offset = pos;
    s.server_offset = server_offset_of(pos);
    s.length = take;
    // Coalesce with the previous piece when contiguous on the same server's
    // datafile (happens when servers_ == 1: consecutive stripes collapse).
    if (!out.empty() && out.back().server == s.server &&
        out.back().server_offset + out.back().length == s.server_offset &&
        out.back().logical_offset + out.back().length == s.logical_offset) {
      out.back().length += take;
    } else {
      // lint: alloc-ok (amortized: pooled/reused vector keeps its capacity)
      out.push_back(s);
    }
    pos += take;
    remaining -= take;
  }
}

std::vector<SubRequestSpec> StripingLayout::decompose_per_server(
    Offset offset, Bytes length) const {
  auto pieces = decompose(offset, length);
  // Merge pieces per server, keeping the first piece's offsets and summing
  // lengths.  Preserve first-touch order.
  std::vector<SubRequestSpec> out;
  std::map<ServerId, std::size_t> index;
  for (const auto& p : pieces) {
    auto [it, inserted] = index.emplace(p.server, out.size());
    if (inserted) {
      out.push_back(p);
    } else {
      out[it->second].length += p.length;
    }
  }
  return out;
}

}  // namespace ibridge::pvfs
