#include "pvfs/metadata.hpp"

namespace ibridge::pvfs {

FileHandle MetadataServer::create_file(const std::string& name,
                                       std::int64_t size,
                                       std::int64_t stripe_unit) {
  assert(by_name_.find(name) == by_name_.end());
  LogicalFile f;
  f.name = name;
  f.layout = StripingLayout(server_count(), sim::Bytes{stripe_unit});
  f.size = size;
  f.datafiles.reserve(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    // Preallocate each server's share (plus one unit of slack for writes
    // that extend slightly past the nominal size).
    const sim::Bytes share =
        f.layout.server_share(sim::Bytes{size},
                              sim::ServerId{static_cast<int>(s)}) +
        sim::Bytes{stripe_unit};
    f.datafiles.push_back(servers_[s]->create_datafile(
        name + ".df" + std::to_string(s), share));
  }
  const FileHandle h = next_++;
  by_name_.emplace(name, h);
  files_.emplace(h, std::move(f));
  return h;
}

void MetadataServer::start_board_daemon() {
  bool any = false;
  for (auto* s : servers_) any = any || s->has_cache();
  if (!any || running_) return;
  running_ = true;
  ++epoch_;
  daemons_.spawn(board_daemon());
}

sim::Task<> MetadataServer::board_daemon() {
  const std::uint64_t epoch = epoch_;
  while (running_ && epoch == epoch_) {
    co_await sim::Delay{sim_, interval_};
    if (!running_ || epoch != epoch_) break;
    // Collect the servers' current T values (the per-server report daemons
    // of the paper, collapsed into one poll with identical staleness), then
    // broadcast the board.
    core::TBoard board(servers_.size(), 0.0);
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      board[s] = servers_[s]->current_t();
    }
    board_ = board;
    for (auto* s : servers_) s->set_board(board);
  }
}

}  // namespace ibridge::pvfs
