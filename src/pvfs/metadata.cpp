#include "pvfs/metadata.hpp"

namespace ibridge::pvfs {

FileHandle MetadataServer::create_file(const std::string& name,
                                       std::int64_t size,
                                       std::int64_t stripe_unit) {
  assert(by_name_.find(name) == by_name_.end());
  LogicalFile f;
  f.name = name;
  f.layout = StripingLayout(server_count(), sim::Bytes{stripe_unit});
  f.size = size;
  f.datafiles.reserve(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    // Preallocate each server's share (plus one unit of slack for writes
    // that extend slightly past the nominal size).
    const sim::Bytes share =
        f.layout.server_share(sim::Bytes{size},
                              sim::ServerId{static_cast<int>(s)}) +
        sim::Bytes{stripe_unit};
    f.datafiles.push_back(servers_[s]->create_datafile(
        name + ".df" + std::to_string(s), share));
  }
  const FileHandle h = next_++;
  by_name_.emplace(name, h);
  files_.emplace(h, std::move(f));
  return h;
}

void MetadataServer::start_board_daemon() {
  bool any = false;
  for (auto* s : servers_) any = any || s->has_cache();
  if (!any || running_) return;
  running_ = true;
  ++epoch_;
  if (group_ == nullptr) {
    daemons_.spawn(board_daemon());
    return;
  }
  // Sharded: the single polling daemon would read and write server-shard
  // state from shard 0 mid-window.  Split it into the paper's actual shape —
  // one report daemon per server (on that server's shard) plus the
  // aggregation/broadcast daemon here — with every cross-shard move going
  // through the barrier-merged post path.
  t_latest_.assign(servers_.size(), 0.0);
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    daemons_.spawn(t_reporter(s));
  }
  daemons_.spawn(board_broadcaster());
}

sim::Task<> MetadataServer::t_reporter(std::size_t s) {
  const std::uint64_t epoch = epoch_;
  DataServer* srv = servers_[s];
  sim::Simulator& ssim = srv->sim();
  // First move to the server's shard; only then touch its clock or state.
  co_await group_->hop(sim_, ssim);
  // running_/epoch_ live on shard 0 but are only mutated in driver phase
  // (stop()/start_board_daemon() between runs), so reading them here races
  // with nothing.
  while (running_ && epoch == epoch_) {
    co_await sim::Delay{ssim, interval_};
    if (!running_ || epoch != epoch_) break;
    const double t = srv->current_t();
    group_->post(ssim, sim_, ssim.now() + group_->lookahead(),
                 sim::InlineEvent([this, s, t] { t_latest_[s] = t; }));
  }
}

sim::Task<> MetadataServer::board_broadcaster() {
  const std::uint64_t epoch = epoch_;
  while (running_ && epoch == epoch_) {
    co_await sim::Delay{sim_, interval_};
    if (!running_ || epoch != epoch_) break;
    // Aggregate the most recently reported T values (one wire hop staler
    // than the legacy poll — the paper's design point) and push a copy of
    // the board to every server's shard.
    core::TBoard board(t_latest_.begin(), t_latest_.end());
    board_ = board;
    for (auto* srv : servers_) {
      group_->post(sim_, srv->sim(), sim_.now() + group_->lookahead(),
                   sim::InlineEvent([srv, board] { srv->set_board(board); }));
    }
  }
}

sim::Task<> MetadataServer::board_daemon() {
  const std::uint64_t epoch = epoch_;
  while (running_ && epoch == epoch_) {
    co_await sim::Delay{sim_, interval_};
    if (!running_ || epoch != epoch_) break;
    // Collect the servers' current T values (the per-server report daemons
    // of the paper, collapsed into one poll with identical staleness), then
    // broadcast the board.
    core::TBoard board(servers_.size(), 0.0);
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      board[s] = servers_[s]->current_t();
    }
    board_ = board;
    for (auto* s : servers_) s->set_board(board);
  }
}

}  // namespace ibridge::pvfs
