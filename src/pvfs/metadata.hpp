// Metadata server: file layout registry and the T-value board daemon.
//
// The metadata server maps logical file names to striping layouts and
// per-server datafile handles.  For iBridge it also runs the aggregation
// daemon of Section II-B: every data server periodically reports its current
// decayed average disk service time T; the metadata server collects the
// values and broadcasts the board to all data servers, which use it for the
// Equation (3) striping-magnification boost.  Boards are therefore up to one
// reporting interval stale — exactly as in the paper's design.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/return_estimator.hpp"
#include "net/network.hpp"
#include "pvfs/layout.hpp"
#include "pvfs/server.hpp"
#include "sim/sync.hpp"

namespace ibridge::pvfs {

using FileHandle = std::uint32_t;
inline constexpr FileHandle kInvalidHandle = 0;

/// A striped logical file.
struct LogicalFile {
  std::string name;
  StripingLayout layout{1, sim::Bytes{64 * 1024}};
  std::int64_t size = 0;
  std::vector<fsim::FileId> datafiles;  ///< one per data server
};

class MetadataServer {
 public:
  MetadataServer(sim::Simulator& sim, std::vector<DataServer*> servers,
                 net::Nic& nic, sim::SimTime report_interval)
      : sim_(sim),
        servers_(std::move(servers)),
        nic_(nic),
        interval_(report_interval),
        daemons_(sim) {}

  ~MetadataServer() { stop(); }

  /// Create a striped file preallocated to `size` bytes.
  FileHandle create_file(const std::string& name, std::int64_t size,
                         std::int64_t stripe_unit);

  const LogicalFile& file(FileHandle h) const {
    auto it = files_.find(h);
    assert(it != files_.end());
    return it->second;
  }
  LogicalFile& file(FileHandle h) {
    auto it = files_.find(h);
    assert(it != files_.end());
    return it->second;
  }
  FileHandle lookup(const std::string& name) const {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? kInvalidHandle : it->second;
  }

  int server_count() const { return static_cast<int>(servers_.size()); }
  net::Nic& nic() { return nic_; }

  /// Sharded clusters set this before start_board_daemon(): the poll-based
  /// daemon is replaced by per-server T reporters (running on each server's
  /// shard) and a shard-0 broadcaster, with all cross-shard traffic going
  /// through the group's lookahead-buffered post path.
  void set_shard_group(sim::ShardGroup* group) { group_ = group; }

  /// Start the T-board daemon (no-op when no server runs iBridge).
  void start_board_daemon();
  void stop() { running_ = false; ++epoch_; }

  /// The most recent board (for tests/inspection).
  const core::TBoard& board() const { return board_; }

 private:
  sim::Task<> board_daemon();
  sim::Task<> t_reporter(std::size_t s);
  sim::Task<> board_broadcaster();

  sim::Simulator& sim_;
  std::vector<DataServer*> servers_;
  net::Nic& nic_;
  sim::SimTime interval_;
  sim::TaskGroup daemons_;
  sim::ShardGroup* group_ = nullptr;
  std::vector<double> t_latest_;  ///< shard-0 copy of each server's last T
  // Ordered maps: iteration over the file registry reaches simulation
  // results (datafile creation order, board daemon), so the containers are
  // deterministic by construction.
  std::map<FileHandle, LogicalFile> files_;
  std::map<std::string, FileHandle> by_name_;
  core::TBoard board_;
  FileHandle next_ = 1;
  bool running_ = false;
  std::uint64_t epoch_ = 0;
};

}  // namespace ibridge::pvfs
