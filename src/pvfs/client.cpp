#include "pvfs/client.hpp"

#include <cassert>
#include <utility>

namespace ibridge::pvfs {

using storage::IoDirection;

Client::Client(sim::Simulator& sim, MetadataServer& mds,
               std::vector<DataServer*> servers, net::NetworkModel& net,
               std::vector<net::Nic*> node_nics, ClientConfig cfg)
    : sim_(sim),
      mds_(mds),
      servers_(std::move(servers)),
      net_(net),
      node_nics_(std::move(node_nics)),
      cfg_(cfg),
      tagger_(sim::Bytes{cfg.fragment_threshold}),
      rng_(cfg.seed) {
  assert(!servers_.empty());
  assert(!node_nics_.empty());
  // Each request fans out one sub-request per data server, and each
  // sub-request keeps an event or two pending (net hop, device completion,
  // deferred resume).  Reserve so request bursts never regrow the heap.
  sim_.reserve(servers_.size() * 8 + node_nics_.size() * 4 + 64);
}

sim::Task<sim::SimTime> Client::read_at(int rank, FileHandle fh,
                                        std::int64_t offset,
                                        std::int64_t length,
                                        std::span<std::byte> data) {
  return request(rank, fh, offset, length, IoDirection::kRead, {}, data);
}

sim::Task<sim::SimTime> Client::write_at(int rank, FileHandle fh,
                                         std::int64_t offset,
                                         std::int64_t length,
                                         std::span<const std::byte> data) {
  return request(rank, fh, offset, length, IoDirection::kWrite, data, {});
}

sim::Task<sim::SimTime> Client::request(int rank, FileHandle fh,
                                        std::int64_t offset,
                                        std::int64_t length,
                                        IoDirection dir,
                                        std::span<const std::byte> wdata,
                                        std::span<std::byte> rdata) {
  assert(length > 0);
  if (profiler_ != nullptr) profiler_->mark(prof_cat_);
  const sim::SimTime t0 = sim_.now();

  obs::RequestId rid = 0;
  obs::SpanId root = 0;
  if (trace_ != nullptr) {
    rid = trace_->new_request();
    root = trace_->begin(
        trace_->track("client", "rank" + std::to_string(rank)), "request",
        "client", rid);
    trace_->arg(root, "rank", rank);
    trace_->arg(root, "offset", offset);
    trace_->arg(root, "length", length);
    trace_->arg(root, "dir", dir == IoDirection::kWrite ? "write" : "read");
  }

  // Client-side request setup cost with jitter (see ClientConfig).
  if (cfg_.overhead_max_us > 0) {
    const obs::SpanId setup =
        root != 0 ? trace_->child(root, "setup", "client") : 0;
    const double us =
        cfg_.overhead_min_us +
        rng_.uniform01() * (cfg_.overhead_max_us - cfg_.overhead_min_us);
    co_await sim::Delay{sim_, sim::SimTime::from_seconds(us / 1e6)};
    if (setup != 0) trace_->end(setup);
  }

  LogicalFile& f = mds_.file(fh);

  // Decompose (io_datafile_setup_msgpairs) and tag fragments client-side
  // into pooled scratch.  The leases live only inside this suspension-free
  // block (join.add runs each child to its first co_await, which copies the
  // piece into the child's frame), so however many ranks are mid-request,
  // at most one per shard holds the buffers at any instant — steady state
  // recycles the same two, allocation-free at any scale.
  sim::JoinSet join(sim_);
  std::size_t subs = 0;
  {
    sim::VectorPool<SubRequestSpec>::Lease pieces = piece_pool_.acquire();
    f.layout.decompose_into(sim::Offset{offset}, sim::Bytes{length}, *pieces);
    sim::VectorPool<core::TaggedSubRequest>::Lease tagged =
        tagged_pool_.acquire();
    if (cfg_.tag_fragments) {
      tagger_.tag_into(*pieces, static_cast<int>(servers_.size()), *tagged);
    } else {
      tagged->reserve(pieces->size());
      for (const auto& p : *pieces)
        tagged->push_back({p.server, p.server_offset, p.length, false, {}});
    }
    subs = tagged->size();

    // Issue every sub-request concurrently; the parent completes when the
    // slowest sub-request does.
    std::int64_t consumed = 0;
    for (std::size_t i = 0; i < tagged->size(); ++i) {
      const core::TaggedSubRequest& sub = (*tagged)[i];
      const std::int64_t piece_off = consumed;
      consumed += sub.length.count();
      std::span<const std::byte> wsub;
      std::span<std::byte> rsub;
      if (!wdata.empty()) {
        wsub = wdata.subspan(static_cast<std::size_t>(piece_off),
                             static_cast<std::size_t>(sub.length.count()));
      }
      if (!rdata.empty()) {
        rsub = rdata.subspan(static_cast<std::size_t>(piece_off),
                             static_cast<std::size_t>(sub.length.count()));
      }
      obs::SpanId sub_span = 0;
      if (root != 0) {
        sub_span = trace_->child(root, "sub", "client");
        trace_->arg(sub_span, "server", sub.server.index());
        trace_->arg(sub_span, "fragment", sub.fragment ? 1 : 0);
        trace_->arg(sub_span, "length", sub.length.count());
        trace_->arg(sub_span, "index", static_cast<std::int64_t>(i));
      }
      join.add(
          subrequest(rank, f, sub, offset, dir, wsub, rsub, rid, sub_span));
    }
  }
  co_await join.join();
  if (profiler_ != nullptr) profiler_->mark(prof_cat_);

  if (dir == IoDirection::kWrite) f.size = std::max(f.size, offset + length);
  bytes_completed_ += length;
  if (root != 0) {
    trace_->arg(root, "subs", static_cast<std::int64_t>(subs));
    trace_->end(root);
  }
  co_return sim_.now() - t0;
}

sim::Task<> Client::subrequest(int rank, const LogicalFile& f,
                               core::TaggedSubRequest sub,
                               std::int64_t /*parent_off*/, IoDirection dir,
                               std::span<const std::byte> wdata,
                               std::span<std::byte> rdata,
                               obs::RequestId request_id,
                               obs::SpanId sub_span) {
  DataServer& server = *servers_[static_cast<std::size_t>(sub.server.index())];
  net::Nic& cnic = nic_of_rank(rank);

  // Request message (and payload, for writes) to the server.
  obs::SpanId nspan =
      sub_span != 0 ? trace_->child(sub_span, "net.send", "net") : 0;
  if (dir == IoDirection::kWrite) {
    co_await net_.transfer(cnic, server.nic(), sub.length.count() + 256);
  } else {
    co_await net_.message(cnic, server.nic());
  }
  if (nspan != 0) trace_->end(nspan);

  core::CacheRequest req;
  req.dir = dir;
  req.file = f.datafiles[static_cast<std::size_t>(sub.server.index())];
  req.offset = sub.server_offset;
  req.length = sub.length;
  req.fragment = sub.fragment;
  req.siblings = sub.siblings;
  req.tag = rank;
  req.trace_request = request_id;
  req.trace_parent = sub_span;
  co_await server.io(std::move(req), wdata, rdata);

  // Payload (reads) or ack (writes) back to the client.
  nspan = sub_span != 0 ? trace_->child(sub_span, "net.recv", "net") : 0;
  if (dir == IoDirection::kRead) {
    co_await net_.transfer(server.nic(), cnic, sub.length.count() + 256);
  } else {
    co_await net_.message(server.nic(), cnic);
  }
  if (nspan != 0) {
    trace_->end(nspan);
  }
  if (sub_span != 0) trace_->end(sub_span);
}

}  // namespace ibridge::pvfs
