#include "pvfs/server.hpp"

#include <cassert>
#include <utility>

namespace ibridge::pvfs {

DataServer::DataServer(sim::Simulator& sim, sim::ServerId id,
                       const DataServerConfig& cfg, net::Nic& nic,
                       storage::SeekProfile profile)
    : sim_(sim), id_(id), nic_(nic), io_slots_(sim, cfg.io_concurrency) {
  // Every client request funnels through io_slots_, so its waiter ring is
  // on the serve path: pre-size it for a burst of 1024 blocked requests
  // (8 KB) so a waiter high-water mark reached mid-run never reallocates —
  // the zero-allocs-per-request steady-state gate counts that as churn.
  io_slots_.reserve(1024);
  disk_ = std::make_unique<storage::HddModel>(sim, cfg.hdd);
  disk_fs_ =
      std::make_unique<fsim::LocalFileSystem>(sim, *disk_, cfg.data_mode);
  disk_fs_->set_rmw_page_bytes(cfg.rmw_page_bytes.count());
  primary_fs_ = disk_fs_.get();

  const bool want_ssd =
      cfg.ibridge.enabled || cfg.storage_mode == StorageMode::kSsdOnly;
  if (want_ssd) {
    ssd_ = std::make_unique<storage::SsdModel>(sim, cfg.ssd);
    ssd_fs_ =
        std::make_unique<fsim::LocalFileSystem>(sim, *ssd_, cfg.data_mode);
  }
  if (cfg.storage_mode == StorageMode::kSsdOnly) {
    // Datafiles live on the SSD: the OS cache still does page-granular RMW
    // there.  (iBridge's log file is exempt — see DataServerConfig.)
    ssd_fs_->set_rmw_page_bytes(cfg.rmw_page_bytes.count());
    primary_fs_ = ssd_fs_.get();
  } else if (cfg.ibridge.enabled) {
    cache_ = std::make_unique<core::IBridgeCache>(
        sim, cfg.ibridge, id, *disk_fs_, *ssd_fs_, std::move(profile));
    cache_->start();
  }
}

DataServer::~DataServer() {
  if (cache_) cache_->stop();
}

void DataServer::set_trace(obs::TraceSession* session) {
  trace_ = session;
  if (cache_) cache_->set_trace(session);
  if (session == nullptr) {
    trace_track_ = obs::kNoTrack;
    disk_->set_span_trace(nullptr, obs::kNoTrack);
    if (ssd_) ssd_->set_span_trace(nullptr, obs::kNoTrack);
    return;
  }
  trace_prefix_ = "srv" + std::to_string(id_.index());
  trace_track_ = session->track(trace_prefix_, "io");
  disk_->set_span_trace(session, session->track(trace_prefix_, "disk"));
  if (ssd_) {
    ssd_->set_span_trace(session, session->track(trace_prefix_, "ssd"));
  }
}

void DataServer::set_profiler(obs::SimProfiler* profiler) {
  profiler_ = profiler;
  if (profiler == nullptr) {
    prof_cat_ = 0;
    if (cache_) cache_->set_profiler(nullptr, 0);
    disk_->set_profiler(nullptr, 0);
    if (ssd_) ssd_->set_profiler(nullptr, 0);
    return;
  }
  prof_cat_ = profiler->category("server");
  if (cache_) cache_->set_profiler(profiler, profiler->category("cache"));
  disk_->set_profiler(profiler, profiler->category("disk"));
  if (ssd_) ssd_->set_profiler(profiler, profiler->category("ssd"));
}

fsim::FileId DataServer::create_datafile(const std::string& name,
                                         sim::Bytes prealloc) {
  const fsim::FileId id = primary_fs_->create(name, prealloc.count());
  assert(id != fsim::kInvalidFile && "data server out of space");
  return id;
}

void DataServer::set_offline(bool offline) {
  if (offline_ == offline) return;
  offline_ = offline;
  if (offline_) return;
  // Back online: release parked arrivals in arrival order.  Resumption is
  // deferred through the simulator so it interleaves deterministically with
  // other work scheduled at this instant.
  std::vector<std::coroutine_handle<>> waiters;
  waiters.swap(offline_waiters_);
  for (std::coroutine_handle<> h : waiters) {
    sim_.defer([h] { h.resume(); });
  }
}

sim::Task<core::ServeResult> DataServer::io(core::CacheRequest req,
                                            std::span<const std::byte> wdata,
                                            std::span<std::byte> rdata) {
  if (profiler_ != nullptr) profiler_->mark(prof_cat_);
  const sim::SimTime t0 = sim_.now();
  // Entry gate: while the server is offline (crashed), park until restart.
  // Re-check after resumption — the server may crash again before this
  // request gets through.
  while (offline_) {
    struct OfflineWake {
      DataServer& s;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        s.offline_waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    co_await OfflineWake{*this};
  }
  const sim::Bytes length = req.length;
  obs::SpanId qspan = 0, sspan = 0;
  ++inflight_;
  if (trace_ != nullptr) {
    trace_->counter(trace_prefix_ + ".inflight", inflight_);
    if (req.trace_parent != 0) {
      qspan = trace_->begin(trace_track_, "server.queue", "server",
                            req.trace_request, req.trace_parent);
    }
  }
  // Take a Trove I/O slot: pvfs2-server performs a bounded number of local
  // I/O jobs concurrently.
  co_await io_slots_.acquire();
  if (qspan != 0) {
    trace_->end(qspan);
    sspan = trace_->begin(trace_track_, "server.serve", "server",
                          req.trace_request, req.trace_parent);
    req.trace_parent = sspan;  // nest cache spans under the serve span
  }
  core::ServeResult result;
  if (cache_) {
    result = co_await cache_->serve(std::move(req), wdata, rdata);
  } else {
    if (req.dir == storage::IoDirection::kWrite) {
      co_await primary_fs_->write(req.file, req.offset.value(),
                                  req.length.count(), wdata, req.tag);
    } else {
      co_await primary_fs_->read(req.file, req.offset.value(),
                                 req.length.count(), rdata, req.tag);
    }
  }
  io_slots_.release();
  result.elapsed = sim_.now() - t0;
  service_.add(result.elapsed);
  bytes_served_ += length;
  if (profiler_ != nullptr) profiler_->heat(id_.index(), length.count());
  --inflight_;
  if (trace_ != nullptr) {
    if (sspan != 0) {
      trace_->arg(sspan, "ssd", result.ssd ? 1 : 0);
      trace_->end(sspan);
    }
    trace_->counter(trace_prefix_ + ".inflight", inflight_);
  }
  co_return result;
}

sim::Task<> DataServer::drain() {
  if (cache_) co_await cache_->drain();
}

}  // namespace ibridge::pvfs
