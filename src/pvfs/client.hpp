// PVFS client: request decomposition, fragment tagging, sub-request fan-out.
//
// Client::read_at / write_at implement the client side of a parallel file
// system request: decompose the logical byte range over the striping layout
// (io_datafile_setup_msgpairs), tag fragments and attach sibling-server ids
// (the iBridge client-side component), then issue every sub-request to its
// data server concurrently and wait for the slowest one — the synchronous-
// request semantics whose tail latency the paper attacks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/tagger.hpp"
#include "net/network.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "pvfs/layout.hpp"
#include "pvfs/metadata.hpp"
#include "pvfs/server.hpp"
#include "sim/buffer_pool.hpp"
#include "sim/rng.hpp"
#include "sim/sync.hpp"

namespace ibridge::pvfs {

struct ClientConfig {
  /// Client-side fragment tagging (on when iBridge is deployed; harmless
  /// but useless when servers are stock).
  bool tag_fragments = true;
  std::int64_t fragment_threshold = 20 * 1024;
  /// MPI processes per client node (one NIC per node).
  int procs_per_node = 48;
  /// Per-request client-side setup cost (MPI-IO stack, VFS entry, kernel
  /// scheduling), drawn uniformly from [min, max].  The jitter is what
  /// desynchronizes concurrent ranks — without it the simulated processes
  /// stay in lockstep and the data servers see an unrealistically perfect
  /// sequential stream.
  double overhead_min_us = 400.0;
  double overhead_max_us = 1400.0;
  std::uint64_t seed = 0x5eed;
};

class Client {
 public:
  Client(sim::Simulator& sim, MetadataServer& mds,
         std::vector<DataServer*> servers, net::NetworkModel& net,
         std::vector<net::Nic*> node_nics, ClientConfig cfg = {});

  /// Synchronous request from `rank`: completes when the slowest
  /// sub-request completes.  Returns the request's service time.
  sim::Task<sim::SimTime> read_at(int rank, FileHandle fh, std::int64_t offset,
                                  std::int64_t length,
                                  std::span<std::byte> data = {});
  sim::Task<sim::SimTime> write_at(int rank, FileHandle fh,
                                   std::int64_t offset, std::int64_t length,
                                   std::span<const std::byte> data = {});

  MetadataServer& mds() { return mds_; }
  net::NetworkModel& network() { return net_; }

  /// NIC of the client node hosting `rank` (used by collective I/O for
  /// shuffle-phase transfer accounting).
  net::Nic& rank_nic(int rank) { return nic_of_rank(rank); }

  /// Payload bytes moved by completed requests (throughput accounting).
  std::int64_t bytes_completed() const { return bytes_completed_; }

  /// Attach a TraceSession (nullptr to detach).  Every subsequent request
  /// records a span tree: request -> setup + per-sub-request sub spans,
  /// each sub linking its net transfers and the server-side spans.
  void set_trace(obs::TraceSession* session) { trace_ = session; }

  /// Attach a SimProfiler (nullptr to detach).  Request issue and join
  /// events mark their simulator events with `category` ("client").
  void set_profiler(obs::SimProfiler* profiler, int category) {
    profiler_ = profiler;
    prof_cat_ = category;
  }

 private:
  sim::Task<sim::SimTime> request(int rank, FileHandle fh, std::int64_t offset,
                                  std::int64_t length,
                                  storage::IoDirection dir,
                                  std::span<const std::byte> wdata,
                                  std::span<std::byte> rdata);

  /// One sub-request round trip: ship it to the server, serve, return data.
  /// `request_id`/`sub_span` are the trace linkage (0 when untraced).
  sim::Task<> subrequest(int rank, const LogicalFile& f,
                         core::TaggedSubRequest sub, std::int64_t parent_off,
                         storage::IoDirection dir,
                         std::span<const std::byte> wdata,
                         std::span<std::byte> rdata, obs::RequestId request_id,
                         obs::SpanId sub_span);

  net::Nic& nic_of_rank(int rank) {
    return *node_nics_[static_cast<std::size_t>(rank / cfg_.procs_per_node) %
                       node_nics_.size()];
  }

  sim::Simulator& sim_;
  MetadataServer& mds_;
  std::vector<DataServer*> servers_;
  net::NetworkModel& net_;
  std::vector<net::Nic*> node_nics_;
  ClientConfig cfg_;
  core::FragmentTagger tagger_;
  // Decompose/tag scratch.  The leases live only inside request()'s
  // suspension-free setup section, so at most one request per shard holds
  // one at a time: two warm buffers serve any number of in-flight ranks.
  sim::VectorPool<SubRequestSpec> piece_pool_;
  sim::VectorPool<core::TaggedSubRequest> tagged_pool_;
  sim::Rng rng_;
  std::int64_t bytes_completed_ = 0;
  obs::TraceSession* trace_ = nullptr;
  obs::SimProfiler* profiler_ = nullptr;
  int prof_cat_ = 0;
};

}  // namespace ibridge::pvfs
