// File striping layout and request decomposition.
//
// PVFS2 stripes each logical file round-robin over N data servers with a
// fixed striping unit (64 KB by default).  A client request for a logical
// byte range is decomposed into per-server sub-requests; this is the PVFS2
// client-side io_datafile_setup_msgpairs() logic the paper instruments.
//
// Terminology follows the paper: the original request is the sub-requests'
// *parent*; sub-requests of the same parent are *siblings*; a sub-request
// smaller than the fragment threshold that belongs to a multi-server parent
// is a *fragment*.
#pragma once

#include <vector>

#include "sim/units.hpp"

namespace ibridge::pvfs {

using sim::Bytes;
using sim::Offset;
using sim::ServerId;

/// One per-server piece of a decomposed request.
struct SubRequestSpec {
  ServerId server;        ///< data server identity
  Offset logical_offset;  ///< offset in the logical file
  Offset server_offset;   ///< offset in the server's datafile
  Bytes length;
};

/// Round-robin striping over `servers` data servers with `unit` bytes per
/// stripe unit.  Stripe unit k of the logical file lives on server
/// (k % servers), at datafile offset (k / servers) * unit.
class StripingLayout {
 public:
  StripingLayout(int servers, Bytes unit) : servers_(servers), unit_(unit) {}

  int servers() const { return servers_; }
  Bytes unit() const { return unit_; }

  /// True when [offset, offset+length) starts and ends on striping-unit
  /// boundaries (no fragments possible).
  bool aligned(Offset offset, Bytes length) const {
    return offset % unit_ == Bytes::zero() &&
           length % unit_ == Bytes::zero();
  }

  ServerId server_of(Offset offset) const {
    return ServerId{static_cast<int>((offset / unit_) % servers_)};
  }

  Offset server_offset_of(Offset offset) const {
    const std::int64_t stripe = offset / unit_;
    return Offset::zero() + (stripe / servers_) * unit_ + offset % unit_;
  }

  /// Bytes of the logical file that land on `server` if the file has
  /// `file_size` bytes (used for datafile preallocation).
  Bytes server_share(Bytes file_size, ServerId server) const;

  /// Decompose a logical byte range into per-server sub-requests.  Pieces
  /// that touch the same server are coalesced when they are contiguous in
  /// the server's datafile (consecutive stripes of one server are contiguous
  /// there only if servers_ == 1); otherwise each stripe-unit crossing emits
  /// a separate sub-request, exactly as PVFS2's msgpair setup does when it
  /// builds per-server I/O lists.  For servers_ > 1, a parent of size <=
  /// unit*servers touches each server at most once, so the returned list has
  /// one entry per touched server in stripe order.
  std::vector<SubRequestSpec> decompose(Offset offset, Bytes length) const;

  /// decompose() into a caller-supplied vector (cleared first).  The hot
  /// request path passes a pooled vector so steady state stays
  /// allocation-free.
  void decompose_into(Offset offset, Bytes length,
                      std::vector<SubRequestSpec>& out) const;

  /// Like decompose(), but merges multiple pieces of the same parent landing
  /// on the same server into that server's I/O list entry (contiguous or
  /// not, PVFS2 ships one request list per server pair).  Each element is a
  /// server's total work for this parent.
  std::vector<SubRequestSpec> decompose_per_server(Offset offset,
                                                   Bytes length) const;

 private:
  int servers_;
  Bytes unit_;
};

}  // namespace ibridge::pvfs
