// Data server: the pvfs2-server equivalent.
//
// Each data server owns a hard disk (and, when iBridge is enabled, a
// companion SSD with an IBridgeCache), a local file system per device, and a
// NIC.  The server handles decomposed sub-requests concurrently — like
// pvfs2-server's asynchronous Trove I/O, serialization happens in the device
// queues, not at the request handler.
//
// Three storage configurations cover the paper's comparisons:
//   * stock      — disk only (IBridgeConfig::enabled == false);
//   * iBridge    — disk + SSD cache (the contribution);
//   * SSD-only   — datafiles live directly on the SSD (Figure 10 baseline).
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cache.hpp"
#include "core/config.hpp"
#include "fsim/filesystem.hpp"
#include "net/network.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"
#include "stats/meters.hpp"
#include "storage/calibration.hpp"
#include "storage/hdd.hpp"
#include "storage/ssd.hpp"

namespace ibridge::pvfs {

enum class StorageMode { kDisk, kSsdOnly };

struct DataServerConfig {
  storage::HddParams hdd = storage::paper_hdd();
  storage::SsdParams ssd = storage::paper_ssd();
  core::IBridgeConfig ibridge = core::IBridgeConfig::stock();
  fsim::DataMode data_mode = fsim::DataMode::kTimingOnly;
  StorageMode storage_mode = StorageMode::kDisk;
  /// Concurrent local I/O jobs per server (pvfs2-server's Trove async-I/O
  /// pool is bounded; this caps device queue depth and thus how much
  /// request merging deep client concurrency can buy).
  int io_concurrency = 8;
  /// OS page size for read-modify-write on the datafile systems: sub-page
  /// writes read the boundary pages first.  Applies to the datafiles on
  /// disk and (in SSD-only mode) on the SSD; iBridge's log file is packed
  /// and flushed in whole pages, so it is exempt — that asymmetry is the
  /// Figure 10 effect.  Zero disables.
  sim::Bytes rmw_page_bytes{4096};
};

class DataServer {
 public:
  /// `profile` is the offline-learned seek curve for this server's disk
  /// model (needed only when iBridge is enabled).
  DataServer(sim::Simulator& sim, sim::ServerId id,
             const DataServerConfig& cfg, net::Nic& nic,
             storage::SeekProfile profile = {});

  DataServer(const DataServer&) = delete;
  DataServer& operator=(const DataServer&) = delete;
  ~DataServer();

  sim::ServerId id() const { return id_; }
  net::Nic& nic() { return nic_; }

  /// The simulator this server's events run on — its own shard in a
  /// sharded cluster, the cluster-wide simulator otherwise.
  sim::Simulator& sim() { return sim_; }

  /// Create this server's datafile for a striped logical file.
  fsim::FileId create_datafile(const std::string& name, sim::Bytes prealloc);

  /// Handle one sub-request (already decomposed and tagged by the client).
  sim::Task<core::ServeResult> io(core::CacheRequest req,
                                  std::span<const std::byte> wdata,
                                  std::span<std::byte> rdata);

  /// Flush iBridge's dirty cached data to the disk (end-of-run accounting).
  sim::Task<> drain();

  /// Current decayed average disk service time T (ms); 0 when stock.
  double current_t() const { return cache_ ? cache_->current_t() : 0.0; }
  void set_board(core::TBoard board) {
    if (cache_) cache_->set_board(std::move(board));
  }

  bool has_cache() const { return cache_ != nullptr; }
  core::IBridgeCache* cache() { return cache_.get(); }
  const core::IBridgeCache* cache() const { return cache_.get(); }

  /// Attach a SimCheck observer to this server's cache (no-op when stock).
  void set_observer(core::CacheObserver* obs) {
    if (cache_) cache_->set_observer(obs);
  }

  /// Attach a TraceSession (nullptr to detach): queue/serve spans for every
  /// traced sub-request, device dispatch spans, in-flight depth counter.
  void set_trace(obs::TraceSession* session);

  /// Attach a SimProfiler (nullptr to detach): request-handling events mark
  /// the "server" category, devices mark "disk"/"ssd", the cache marks
  /// "cache", and every completed sub-request bumps this server's heat
  /// counters.  Wire before the run — category interning allocates.
  void set_profiler(obs::SimProfiler* profiler);

  /// Take the server off the network (crashed) or bring it back.  While
  /// offline, newly arriving io() calls park before touching any server
  /// state and resume — in arrival order — when the server returns; their
  /// outage wait is part of the measured service time, exactly what a
  /// client of a crashed-and-restarted server observes.  Requests already
  /// past the entry gate when the crash hits run to completion (the fault
  /// engine waits for inflight() to reach zero before acting on state).
  void set_offline(bool offline);
  bool offline() const { return offline_; }
  /// Requests between io()'s entry gate and exit (parked arrivals excluded).
  int inflight() const { return inflight_; }

  storage::BlockDevice& disk() { return *disk_; }
  const storage::BlockDevice& disk() const { return *disk_; }
  storage::BlockDevice* ssd() { return ssd_.get(); }
  const storage::BlockDevice* ssd() const { return ssd_.get(); }
  /// Concrete SSD model, for the fault engine's set_fault_hook (nullptr on
  /// disk-only servers).
  storage::SsdModel* ssd_model() { return ssd_.get(); }
  fsim::LocalFileSystem& fs() { return *primary_fs_; }
  const stats::ServiceTimeMeter& service_meter() const { return service_; }

  /// Total payload bytes this server has served.
  sim::Bytes bytes_served() const { return bytes_served_; }

 private:
  sim::Simulator& sim_;
  sim::ServerId id_;
  net::Nic& nic_;
  sim::Semaphore io_slots_;
  std::unique_ptr<storage::HddModel> disk_;
  std::unique_ptr<storage::SsdModel> ssd_;
  std::unique_ptr<fsim::LocalFileSystem> disk_fs_;
  std::unique_ptr<fsim::LocalFileSystem> ssd_fs_;
  fsim::LocalFileSystem* primary_fs_ = nullptr;  // where datafiles live
  std::unique_ptr<core::IBridgeCache> cache_;
  stats::ServiceTimeMeter service_;
  sim::Bytes bytes_served_;
  obs::TraceSession* trace_ = nullptr;
  obs::TrackId trace_track_ = obs::kNoTrack;
  obs::SimProfiler* profiler_ = nullptr;
  int prof_cat_ = 0;
  std::string trace_prefix_;  ///< "srv<N>", counter-name prefix
  int inflight_ = 0;          ///< requests between io() entry and exit
  bool offline_ = false;
  /// io() coroutines parked at the entry gate while the server is offline.
  std::vector<std::coroutine_handle<>> offline_waiters_;
};

}  // namespace ibridge::pvfs
