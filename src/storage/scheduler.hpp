// I/O schedulers for the simulated block devices.
//
// The paper runs CFQ on the hard disks and Noop on the SSDs.  What matters
// for reproducing its block-level request-size distributions (Figs 2(c-e), 5)
// is (a) whether contiguous queued requests get merged into one dispatch and
// (b) in what order requests are dispatched.  NoopScheduler models a FIFO
// with front/back merging; ElevatorScheduler models the sorted dispatch order
// (SCAN) plus merging that the kernel elevator + NCQ reordering produce.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/mem_pool.hpp"
#include "sim/sync.hpp"
#include "storage/block.hpp"

namespace ibridge::storage {

/// A queued request together with its completion promise.
struct PendingRequest {
  BlockRequest req;
  sim::SimTime submitted;
  sim::SimPromise<BlockCompletion> promise;
};

/// A batch of pending requests merged into one contiguous device operation.
struct DispatchBatch {
  IoDirection dir = IoDirection::kRead;
  std::int64_t lbn = 0;
  std::int64_t sectors = 0;
  std::vector<PendingRequest> members;

  bool empty() const { return members.empty(); }
  std::int64_t end() const { return lbn + sectors; }
  std::int64_t bytes() const { return sectors * kSectorBytes; }

  /// Clear for reuse, keeping the members vector's capacity.  The devices
  /// recycle their in-flight batches through this, so steady-state dispatch
  /// never allocates.
  void reset() {
    dir = IoDirection::kRead;
    lbn = 0;
    sectors = 0;
    members.clear();
  }
};

/// What pop_next would dispatch, without removing it.
struct PeekInfo {
  std::int64_t distance = 0;  ///< |candidate lbn - head|
  int tag = -1;               ///< candidate's issuing stream
};

/// Scheduler interface: owns the pending queue between add() and pop_next().
class IoScheduler {
 public:
  virtual ~IoScheduler() = default;

  virtual void add(PendingRequest p) = 0;

  /// Remove the next batch to dispatch given the current head position into
  /// `out` (reset()s it first; its members capacity survives reuse).  `out`
  /// stays empty when the queue is.
  virtual void pop_next(std::int64_t head_lbn, DispatchBatch& out) = 0;

  /// Value-returning convenience for tests and tools.
  DispatchBatch pop_next(std::int64_t head_lbn) {
    DispatchBatch out;
    pop_next(head_lbn, out);
    return out;
  }

  virtual bool empty() const = 0;
  virtual std::size_t depth() const = 0;

  /// Inspect the request pop_next would dispatch.  Used by the device's
  /// anticipation heuristic.
  virtual std::optional<PeekInfo> peek(std::int64_t head_lbn) const = 0;
};

/// FIFO dispatch with front/back merging of contiguous same-direction
/// requests (the Linux noop scheduler still merges).
class NoopScheduler final : public IoScheduler {
 public:
  /// `max_merge_sectors` mirrors the kernel's max_sectors_kb limit.
  explicit NoopScheduler(std::int64_t max_merge_sectors = 1024)
      : max_sectors_(max_merge_sectors) {}

  using IoScheduler::pop_next;
  void add(PendingRequest p) override;
  void pop_next(std::int64_t head_lbn, DispatchBatch& out) override;
  bool empty() const override { return head_ == queue_.size(); }
  std::size_t depth() const override { return queue_.size() - head_; }
  std::optional<PeekInfo> peek(std::int64_t head_lbn) const override;

 private:
  std::int64_t max_sectors_;
  // FIFO as a vector with an advancing head: pop_front is ++head_ and add()
  // periodically compacts the live tail down in place, so a steady-state
  // queue reuses one buffer forever (std::deque would churn a 512-byte
  // chunk through the allocator every few dozen requests).
  std::vector<PendingRequest> queue_;
  std::size_t head_ = 0;
};

/// CFQ-like scheduler: one queue per issuing stream (BlockRequest::tag),
/// served in round-robin slices of `quantum` dispatches.  Within the active
/// stream requests dispatch in SCAN order; each dispatch absorbs requests
/// contiguous with it from ANY stream (the kernel's cross-queue merge).
/// This is the regime the paper's testbed ran (CFQ on the data-server
/// disks): per-process service order means concurrent strided streams do
/// NOT merge into long runs, which is what produces Figure 2(c)'s
/// mostly-64KB dispatch distribution.
class CfqScheduler final : public IoScheduler {
 public:
  explicit CfqScheduler(int quantum = 8, std::int64_t max_merge_sectors = 1024)
      : quantum_(quantum), max_sectors_(max_merge_sectors) {
    // Pre-warm the node pool and the round-robin ring for a queue-depth
    // high-water mark of kPrimeDepth requests.  Both rb-tree node types
    // (outer tag entry, inner per-stream entry) land in the 128-byte size
    // class on LP64; a depth record first set mid-run then costs a recycled
    // chunk, not a fresh one — same pre-sizing contract as
    // MappingTable::reserve, covered by bench_scale --check's zero-alloc
    // steady-state gate.
    pool_.prime(128, kPrimeDepth);
    pool_.prime(192, kPrimeDepth);
    rr_.reserve(kPrimeDepth);
  }

  using IoScheduler::pop_next;
  void add(PendingRequest p) override;
  void pop_next(std::int64_t head_lbn, DispatchBatch& out) override;
  bool empty() const override { return size_ == 0; }
  std::size_t depth() const override { return size_; }
  std::optional<PeekInfo> peek(std::int64_t head_lbn) const override;

  /// Tag whose stream was dispatched from most recently (for the device's
  /// CFQ-style anticipation: an arrival from this tag ends idling).
  int last_tag() const { return last_tag_; }

  /// Queue depth (pending requests per disk) the constructor pre-warms node
  /// pools for; ~80 KB per scheduler.  Deeper queues still work — they just
  /// pay a one-time pool miss per chunk of extra depth.
  static constexpr std::size_t kPrimeDepth = 256;

 private:
  // Per-stream queue sorted by (lbn, arrival seq).  Both map levels allocate
  // their nodes from the scheduler's own ChunkPool: nodes freed by a
  // dispatch are recycled by the next add(), so steady-state queue churn
  // never touches the global allocator (the million-rank campaign's
  // zero-allocs-per-request gate covers this path via bench_scale --check).
  using Key = std::pair<std::int64_t, std::uint64_t>;
  using QueueAlloc = sim::PoolAllocator<std::pair<const Key, PendingRequest>>;
  using StreamQueue = std::map<Key, PendingRequest, std::less<Key>, QueueAlloc>;
  using TagAlloc = sim::PoolAllocator<std::pair<const int, StreamQueue>>;

  const PendingRequest* pick(const StreamQueue& q, std::int64_t head) const;
  bool absorb_contiguous(DispatchBatch& batch);
  void note_stream_drained(int tag);
  void rr_push(int tag);

  int quantum_;
  std::int64_t max_sectors_;
  // Declared before the maps: the pool must outlive every node they hold.
  sim::ChunkPool pool_;
  std::map<int, StreamQueue, std::less<int>, TagAlloc> queues_{TagAlloc(pool_)};
  // Round-robin order of streams with pending work, as a vector with an
  // advancing head (same allocation-free FIFO idiom as NoopScheduler).
  std::vector<int> rr_;
  std::size_t rr_head_ = 0;
  int active_ = -1;
  int budget_ = 0;
  int last_tag_ = -1;
  std::uint64_t seq_ = 0;
  std::size_t size_ = 0;
};

/// SCAN-order dispatch with merging: requests are kept sorted by LBN; the
/// next batch starts at the first request at or after the head position
/// (wrapping to the lowest LBN) and absorbs every queued request contiguous
/// with it, up to the merge limit.
class ElevatorScheduler final : public IoScheduler {
 public:
  explicit ElevatorScheduler(std::int64_t max_merge_sectors = 1024)
      : max_sectors_(max_merge_sectors) {}

  using IoScheduler::pop_next;
  void add(PendingRequest p) override;
  void pop_next(std::int64_t head_lbn, DispatchBatch& out) override;
  bool empty() const override { return sorted_.empty(); }
  std::size_t depth() const override { return sorted_.size(); }
  std::optional<PeekInfo> peek(std::int64_t head_lbn) const override;

 private:
  std::size_t pick_index(std::int64_t head_lbn) const;

  std::int64_t max_sectors_;
  // Sorted by (lbn, arrival). A vector keeps it simple; queue depths in the
  // simulated workloads stay small (hundreds at most).
  std::vector<PendingRequest> sorted_;
};

}  // namespace ibridge::storage
