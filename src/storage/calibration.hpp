// Canonical device parameter sets calibrated against the paper's Table II.
//
// The paper's testbed used an HP MM0500FAMYT 7200-RPM SAS disk and an HP
// MK0120EAVDT 120 GB SATA SSD.  We do not model those exact drives; we pick
// model parameters so the simulated devices reproduce Table II's sequential
// rates exactly and its sequential-vs-random ordering and read-vs-write
// asymmetry.  bench_table2_devices regenerates the table from the models and
// tests/storage pin these calibrations with tolerances.
#pragma once

#include "storage/hdd.hpp"
#include "storage/ssd.hpp"

namespace ibridge::storage {

/// HDD model matching the paper's data-server disk (Table II column 2).
inline HddParams paper_hdd() {
  HddParams p;
  p.capacity_bytes = 1'000LL * 1000 * 1000 * 1000;  // 1 TB
  p.seq_read_bw = 85e6;
  p.seq_write_bw = 80e6;
  return p;
}

/// SSD model matching the paper's data-server SSD (Table II column 1).
inline SsdParams paper_ssd() {
  SsdParams p;
  p.capacity_bytes = 120LL * 1000 * 1000 * 1000;  // 120 GB
  p.seq_read_bw = 160e6;
  p.seq_write_bw = 140e6;
  return p;
}

}  // namespace ibridge::storage
