#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>

#include "storage/scheduler.hpp"

namespace ibridge::storage {

namespace {

bool can_merge(const DispatchBatch& b, const BlockRequest& r,
               std::int64_t max_sectors) {
  return r.dir == b.dir && b.sectors + r.sectors <= max_sectors &&
         (r.lbn == b.end() || r.end() == b.lbn);
}

}  // namespace

void CfqScheduler::add(PendingRequest p) {
  const int tag = p.req.tag;
  auto [it, inserted] = queues_.try_emplace(tag);
  if (inserted || it->second.empty()) {
    // Stream transitions idle -> pending: enter the round-robin.
    rr_.push_back(tag);
  }
  it->second.emplace(Key{p.req.lbn, seq_++}, std::move(p));
  ++size_;
}

const PendingRequest* CfqScheduler::pick(const StreamQueue& q,
                                         std::int64_t head) const {
  assert(!q.empty());
  // SCAN within the stream: first request at or after the head, else the
  // lowest-LBN one.
  auto it = q.lower_bound(Key{head, 0});
  if (it == q.end()) it = q.begin();
  return &it->second;
}

void CfqScheduler::note_stream_drained(int tag) {
  auto it = queues_.find(tag);
  if (it != queues_.end() && it->second.empty()) {
    // Leave the map entry (streams are long-lived); drop from round-robin
    // lazily: rr_ entries for empty streams are skipped in pop_next.
    (void)tag;
  }
}

bool CfqScheduler::absorb_contiguous(DispatchBatch& batch) {
  // Search every stream for a request contiguous with the batch (the
  // kernel's cross-queue back/front merge).  Returns true on progress.
  for (auto& [tag, q] : queues_) {
    if (q.empty()) continue;
    // Back merge: request starting exactly at batch end.
    auto it = q.lower_bound(Key{batch.end(), 0});
    if (it != q.end() && it->second.req.lbn == batch.end() &&
        can_merge(batch, it->second.req, max_sectors_)) {
      batch.sectors += it->second.req.sectors;
      batch.members.push_back(std::move(it->second));
      q.erase(it);
      --size_;
      return true;
    }
    // Front merge: request ending exactly at batch start.
    it = q.lower_bound(Key{batch.lbn, 0});
    while (it != q.begin()) {
      --it;
      if (it->second.req.end() == batch.lbn &&
          can_merge(batch, it->second.req, max_sectors_)) {
        batch.lbn = it->second.req.lbn;
        batch.sectors += it->second.req.sectors;
        batch.members.push_back(std::move(it->second));
        q.erase(it);
        --size_;
        return true;
      }
      if (it->second.req.end() < batch.lbn) break;
    }
  }
  return false;
}

DispatchBatch CfqScheduler::pop_next(std::int64_t head_lbn) {
  DispatchBatch batch;
  if (size_ == 0) return batch;

  // Keep the active stream while it has requests and budget; otherwise
  // rotate to the next stream with pending work.
  auto active_has_work = [&] {
    if (active_ < 0 || budget_ <= 0) return false;
    auto it = queues_.find(active_);
    return it != queues_.end() && !it->second.empty();
  };
  if (!active_has_work()) {
    if (active_ >= 0) {
      auto it = queues_.find(active_);
      if (it != queues_.end() && !it->second.empty()) {
        rr_.push_back(active_);  // budget exhausted, still pending
      }
    }
    active_ = -1;
    while (!rr_.empty()) {
      const int tag = rr_.front();
      rr_.pop_front();
      auto it = queues_.find(tag);
      if (it != queues_.end() && !it->second.empty()) {
        active_ = tag;
        budget_ = quantum_;
        break;
      }
    }
    if (active_ < 0) return batch;  // rr_ was stale; size_ said otherwise
  }

  StreamQueue& q = queues_[active_];
  const PendingRequest* chosen = pick(q, head_lbn);
  const Key key{chosen->req.lbn, 0};
  auto it = q.lower_bound(key);
  // pick() returned either lower_bound(head) or begin(); relocate it.
  if (it == q.end() || &it->second != chosen) {
    for (it = q.begin(); it != q.end() && &it->second != chosen; ++it) {
    }
  }
  assert(it != q.end());

  batch.dir = it->second.req.dir;
  batch.lbn = it->second.req.lbn;
  batch.sectors = it->second.req.sectors;
  batch.members.push_back(std::move(it->second));
  q.erase(it);
  --size_;
  --budget_;
  last_tag_ = active_;

  while (absorb_contiguous(batch)) {
  }
  note_stream_drained(active_);
  return batch;
}

std::optional<PeekInfo> CfqScheduler::peek(std::int64_t head_lbn) const {
  if (size_ == 0) return std::nullopt;
  // What pop_next would dispatch: the active stream's best candidate if it
  // still has work and budget, else the next stream's.
  if (active_ >= 0 && budget_ > 0) {
    auto it = queues_.find(active_);
    if (it != queues_.end() && !it->second.empty()) {
      const PendingRequest* r = pick(it->second, head_lbn);
      return PeekInfo{std::llabs(r->req.lbn - head_lbn), r->req.tag};
    }
  }
  for (int tag : rr_) {
    auto it = queues_.find(tag);
    if (it != queues_.end() && !it->second.empty()) {
      const PendingRequest* r = pick(it->second, head_lbn);
      return PeekInfo{std::llabs(r->req.lbn - head_lbn), r->req.tag};
    }
  }
  return std::nullopt;
}

}  // namespace ibridge::storage
