#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>

#include "storage/scheduler.hpp"

namespace ibridge::storage {

namespace {

bool can_merge(const DispatchBatch& b, const BlockRequest& r,
               std::int64_t max_sectors) {
  return r.dir == b.dir && b.sectors + r.sectors <= max_sectors &&
         (r.lbn == b.end() || r.end() == b.lbn);
}

}  // namespace

void CfqScheduler::rr_push(int tag) {
  // Same allocation-free FIFO idiom as NoopScheduler's queue: reclaim the
  // popped prefix instead of letting the buffer crawl forward.
  if (rr_head_ == rr_.size()) {
    rr_.clear();
    rr_head_ = 0;
  } else if (rr_head_ > 64 && rr_head_ * 2 > rr_.size()) {
    rr_.erase(rr_.begin(), rr_.begin() + static_cast<std::ptrdiff_t>(rr_head_));
    rr_head_ = 0;
  }
  rr_.push_back(tag);
}

void CfqScheduler::add(PendingRequest p) {
  const int tag = p.req.tag;
  auto it = queues_.find(tag);
  if (it == queues_.end()) {
    it = queues_.emplace(tag, StreamQueue(QueueAlloc(pool_))).first;
  }
  if (it->second.empty()) {
    // Stream transitions idle -> pending: enter the round-robin.
    rr_push(tag);
  }
  it->second.emplace(Key{p.req.lbn, seq_++}, std::move(p));
  ++size_;
}

const PendingRequest* CfqScheduler::pick(const StreamQueue& q,
                                         std::int64_t head) const {
  assert(!q.empty());
  // SCAN within the stream: first request at or after the head, else the
  // lowest-LBN one.
  auto it = q.lower_bound(Key{head, 0});
  if (it == q.end()) it = q.begin();
  return &it->second;
}

void CfqScheduler::note_stream_drained(int tag) {
  // Erase the drained stream's entry: an empty StreamQueue already behaved
  // exactly like an absent one everywhere (pop_next, peek, and the rr_ skip
  // all test for emptiness), and with pooled nodes re-creating it on the
  // stream's next arrival is a pool-recycled insert, not an allocation.
  // Keeping entries forever would let a million-rank sweep pin one node per
  // tag per disk.  Drop from round-robin lazily: rr_ entries for drained
  // streams are skipped in pop_next.
  auto it = queues_.find(tag);
  if (it != queues_.end() && it->second.empty()) queues_.erase(it);
}

bool CfqScheduler::absorb_contiguous(DispatchBatch& batch) {
  // Search every stream for a request contiguous with the batch (the
  // kernel's cross-queue back/front merge).  Returns true on progress.  A
  // stream drained by the merge loses its map entry (unless it is the
  // active one, whose queue pop_next may still touch — note_stream_drained
  // reaps that after the merge loop).
  for (auto qit = queues_.begin(); qit != queues_.end(); ++qit) {
    StreamQueue& q = qit->second;
    if (q.empty()) continue;
    // Back merge: request starting exactly at batch end.
    auto it = q.lower_bound(Key{batch.end(), 0});
    if (it != q.end() && it->second.req.lbn == batch.end() &&
        can_merge(batch, it->second.req, max_sectors_)) {
      batch.sectors += it->second.req.sectors;
      batch.members.push_back(std::move(it->second));
      q.erase(it);
      --size_;
      if (q.empty() && qit->first != active_) queues_.erase(qit);
      return true;
    }
    // Front merge: request ending exactly at batch start.
    it = q.lower_bound(Key{batch.lbn, 0});
    while (it != q.begin()) {
      --it;
      if (it->second.req.end() == batch.lbn &&
          can_merge(batch, it->second.req, max_sectors_)) {
        batch.lbn = it->second.req.lbn;
        batch.sectors += it->second.req.sectors;
        batch.members.push_back(std::move(it->second));
        q.erase(it);
        --size_;
        if (q.empty() && qit->first != active_) queues_.erase(qit);
        return true;
      }
      if (it->second.req.end() < batch.lbn) break;
    }
  }
  return false;
}

void CfqScheduler::pop_next(std::int64_t head_lbn, DispatchBatch& batch) {
  batch.reset();
  if (size_ == 0) return;

  // Keep the active stream while it has requests and budget; otherwise
  // rotate to the next stream with pending work.
  auto active_has_work = [&] {
    if (active_ < 0 || budget_ <= 0) return false;
    auto it = queues_.find(active_);
    return it != queues_.end() && !it->second.empty();
  };
  if (!active_has_work()) {
    if (active_ >= 0) {
      auto it = queues_.find(active_);
      if (it != queues_.end() && !it->second.empty()) {
        rr_push(active_);  // budget exhausted, still pending
      }
    }
    active_ = -1;
    while (rr_head_ < rr_.size()) {
      const int tag = rr_[rr_head_++];
      auto it = queues_.find(tag);
      if (it != queues_.end() && !it->second.empty()) {
        active_ = tag;
        budget_ = quantum_;
        break;
      }
    }
    if (active_ < 0) return;  // rr_ was stale; size_ said otherwise
  }

  StreamQueue& q = queues_.find(active_)->second;
  const PendingRequest* chosen = pick(q, head_lbn);
  const Key key{chosen->req.lbn, 0};
  auto it = q.lower_bound(key);
  // pick() returned either lower_bound(head) or begin(); relocate it.
  if (it == q.end() || &it->second != chosen) {
    for (it = q.begin(); it != q.end() && &it->second != chosen; ++it) {
    }
  }
  assert(it != q.end());

  batch.dir = it->second.req.dir;
  batch.lbn = it->second.req.lbn;
  batch.sectors = it->second.req.sectors;
  batch.members.push_back(std::move(it->second));
  q.erase(it);
  --size_;
  --budget_;
  last_tag_ = active_;

  while (absorb_contiguous(batch)) {
  }
  note_stream_drained(active_);
}

std::optional<PeekInfo> CfqScheduler::peek(std::int64_t head_lbn) const {
  if (size_ == 0) return std::nullopt;
  // What pop_next would dispatch: the active stream's best candidate if it
  // still has work and budget, else the next stream's.
  if (active_ >= 0 && budget_ > 0) {
    auto it = queues_.find(active_);
    if (it != queues_.end() && !it->second.empty()) {
      const PendingRequest* r = pick(it->second, head_lbn);
      return PeekInfo{std::llabs(r->req.lbn - head_lbn), r->req.tag};
    }
  }
  for (std::size_t i = rr_head_; i < rr_.size(); ++i) {
    const int tag = rr_[i];
    auto it = queues_.find(tag);
    if (it != queues_.end() && !it->second.empty()) {
      const PendingRequest* r = pick(it->second, head_lbn);
      return PeekInfo{std::llabs(r->req.lbn - head_lbn), r->req.tag};
    }
  }
  return std::nullopt;
}

}  // namespace ibridge::storage
