#include "storage/profiler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace ibridge::storage {

SeekProfile::SeekProfile(std::vector<Sample> samples)
    : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end(),
            [](const Sample& a, const Sample& b) {
              return a.distance < b.distance;
            });
  // Enforce monotonicity: a longer seek cannot be faster.
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    samples_[i].ms = std::max(samples_[i].ms, samples_[i - 1].ms);
  }
}

sim::SimTime SeekProfile::seek_time(std::int64_t d) const {
  if (samples_.empty() || d <= 0) return sim::SimTime::zero();
  if (d <= samples_.front().distance) {
    return sim::SimTime::from_seconds(samples_.front().ms / 1e3);
  }
  if (d >= samples_.back().distance) {
    return sim::SimTime::from_seconds(samples_.back().ms / 1e3);
  }
  auto it = std::lower_bound(
      samples_.begin(), samples_.end(), d,
      [](const Sample& s, std::int64_t dist) { return s.distance < dist; });
  const Sample& hi = *it;
  const Sample& lo = *(it - 1);
  const double t = static_cast<double>(d - lo.distance) /
                   static_cast<double>(hi.distance - lo.distance);
  const double ms = lo.ms + t * (hi.ms - lo.ms);
  return sim::SimTime::from_seconds(ms / 1e3);
}

namespace {

struct ProfileResult {
  std::vector<SeekProfile::Sample> samples;
  double stream_ms = 0.0;
  double stream_write_ms = 0.0;
  double near_ms = 0.0;  // positioning cost of a minimal-distance hop
  double write_small_ms = 0.0;  // discontinuous small-write surcharge
  double write_large_ms = 0.0;  // discontinuous large-write surcharge
};

sim::Task<> run_probes(sim::Simulator& sim, BlockDevice& dev,
                       const ProfilerConfig& cfg, ProfileResult& out,
                       bool& done) {
  const std::int64_t cap = dev.capacity_sectors();
  const std::int64_t probe = cfg.probe_sectors;

  // 1. Streaming read to measure peak bandwidth.
  {
    const std::int64_t total = cfg.stream_bytes / kSectorBytes;
    const std::int64_t chunk = 2048;  // 1 MB per request, back to back
    const sim::SimTime t0 = sim.now();
    for (std::int64_t pos = 0; pos < total; pos += chunk) {
      co_await dev.submit(
          {IoDirection::kRead, pos, std::min(chunk, total - pos), 0});
    }
    out.stream_ms = (sim.now() - t0).to_millis();
  }

  // 2. Seek-distance ladder: for each distance d, hop back and forth between
  //    lbn and lbn+d so every probe incurs a seek of exactly d.
  const double max_d = static_cast<double>(cap) * 0.45;
  const double min_d = 1024.0;  // 512 KB
  for (int i = 0; i < cfg.distance_points; ++i) {
    const double frac =
        cfg.distance_points == 1
            ? 0.0
            : static_cast<double>(i) / (cfg.distance_points - 1);
    const auto d = static_cast<std::int64_t>(
        min_d * std::pow(max_d / min_d, frac));
    const std::int64_t base = cap / 4;
    double total_ms = 0.0;
    for (int p = 0; p < cfg.probes_per_distance; ++p) {
      const std::int64_t lbn = (p % 2 == 0) ? base : base + d;
      const sim::SimTime t0 = sim.now();
      co_await dev.submit({IoDirection::kRead, lbn, probe, 0});
      total_ms += (sim.now() - t0).to_millis();
    }
    out.samples.push_back(
        {d, total_ms / static_cast<double>(cfg.probes_per_distance)});
  }

  // 3. Near-hop probe: positioning cost with negligible seek distance,
  //    approximating the rotational-latency component.
  {
    double total_ms = 0.0;
    const int reps = 8;
    std::int64_t lbn = cap / 3;
    for (int p = 0; p < reps; ++p) {
      lbn += probe + 2;  // skip two sectors: breaks contiguity, tiny distance
      const sim::SimTime t0 = sim.now();
      co_await dev.submit({IoDirection::kRead, lbn, probe, 0});
      total_ms += (sim.now() - t0).to_millis();
    }
    out.near_ms = total_ms / reps;
  }

  // 4. Streaming write bandwidth.
  {
    const std::int64_t total = cfg.stream_bytes / kSectorBytes;
    const std::int64_t chunk = 2048;
    const sim::SimTime t0 = sim.now();
    for (std::int64_t pos = 0; pos < total; pos += chunk) {
      co_await dev.submit(
          {IoDirection::kWrite, pos, std::min(chunk, total - pos), 0});
    }
    out.stream_write_ms = (sim.now() - t0).to_millis();
  }

  // 5. Discontinuous-write surcharge: hop back and forth at a fixed medium
  //    distance, once with reads and once with writes, at a small and a
  //    large request size; the per-op difference is the surcharge.
  {
    const std::int64_t d = 1 << 20;  // 512 MB in sectors
    const std::int64_t base = cap / 2;
    auto measure = [&](IoDirection dir,
                       std::int64_t sectors) -> sim::Task<double> {
      // Unmeasured warm-up probe: park the head at base+d so every timed
      // probe hops exactly distance d (the first hop would otherwise carry
      // whatever distance the previous experiment left behind).
      co_await dev.submit({IoDirection::kRead, base + d, sectors, 0});
      double total_ms = 0.0;
      const int reps = 6;
      for (int p = 0; p < reps; ++p) {
        const std::int64_t lbn = (p % 2 == 0) ? base : base + d;
        const sim::SimTime t0 = sim.now();
        co_await dev.submit({dir, lbn, sectors, 0});
        total_ms += (sim.now() - t0).to_millis();
      }
      co_return total_ms / reps;
    };
    const double rd_small = co_await measure(IoDirection::kRead, probe);
    const double wr_small = co_await measure(IoDirection::kWrite, probe);
    const double rd_large = co_await measure(IoDirection::kRead, 128);
    const double wr_large = co_await measure(IoDirection::kWrite, 128);
    out.write_small_ms = std::max(0.0, wr_small - rd_small);
    out.write_large_ms = std::max(0.0, wr_large - rd_large);
  }

  done = true;
}

}  // namespace

SeekProfile DeviceProfiler::profile(sim::Simulator& sim,
                                    BlockDevice& dev) const {
  ProfileResult result;
  bool done = false;
  auto task = run_probes(sim, dev, cfg_, result, done);
  task.start();
  sim.run_while_pending([&] { return done; });
  assert(done && "profiling simulation stalled");

  // The measured per-probe time at distance d is seek(d) + rotation +
  // transfer + overhead.  Subtract the transfer/overhead floor estimated
  // from the near-hop probe so the profile isolates the distance-dependent
  // part plus rotation (exactly the D_to_T + R sum Equation (1) needs; we
  // store rotation separately using the near-hop measurement).
  SeekProfile::Sample floor{0, result.near_ms};
  std::vector<SeekProfile::Sample> net;
  net.reserve(result.samples.size());
  for (const auto& s : result.samples) {
    net.push_back({s.distance, std::max(0.0, s.ms - floor.ms)});
  }
  SeekProfile profile(std::move(net));
  profile.set_rotation(sim::SimTime::from_seconds(result.near_ms / 1e3));
  if (result.stream_ms > 0) {
    profile.set_peak_bandwidth(static_cast<double>(cfg_.stream_bytes) /
                               (result.stream_ms / 1e3));
  }
  if (result.stream_write_ms > 0) {
    profile.set_peak_write_bandwidth(static_cast<double>(cfg_.stream_bytes) /
                                     (result.stream_write_ms / 1e3));
  }
  profile.set_write_surcharge(result.write_small_ms, result.write_large_ms);
  return profile;
}

}  // namespace ibridge::storage
