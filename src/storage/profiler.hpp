// Offline disk profiling: learning the seek-distance -> seek-time function.
//
// iBridge's server-side service-time model (Equation 1) needs D_to_T, "a
// function for converting the disk seek distance to seek time", which the
// paper obtains "from an offline profiling of the disk" following Huang et
// al. (FS2, SOSP'05).  We reproduce that honestly: DeviceProfiler issues
// probe requests at controlled distances against a BlockDevice in a private
// simulation, measures the service times, and builds a piecewise-linear
// SeekProfile.  The iBridge runtime then uses only the learned profile, never
// the HddModel's internal parameters.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "sim/units.hpp"
#include "storage/block.hpp"

namespace ibridge::storage {

/// Piecewise-linear interpolation of seek time as a function of seek
/// distance (sectors).  Monotonised so noisy samples cannot produce a
/// decreasing curve.
class SeekProfile {
 public:
  struct Sample {
    std::int64_t distance;  // sectors
    double ms;              // measured seek + settle time
  };

  SeekProfile() = default;
  explicit SeekProfile(std::vector<Sample> samples);

  /// D_to_T: interpolated seek time for a given distance.
  sim::SimTime seek_time(std::int64_t distance_sectors) const;

  /// The rotational-latency estimate extracted during profiling (the
  /// distance-independent component of positioning time).
  sim::SimTime rotation() const { return rotation_; }
  void set_rotation(sim::SimTime r) { rotation_ = r; }

  /// Peak transfer bandwidth (bytes/second) measured by streaming reads.
  double peak_bandwidth() const { return peak_bw_; }
  void set_peak_bandwidth(double bw) { peak_bw_ = bw; }

  /// Peak streaming-write bandwidth (bytes/second).
  double peak_write_bandwidth() const {
    return write_bw_ > 0 ? write_bw_ : peak_bw_;
  }
  void set_peak_write_bandwidth(double bw) { write_bw_ = bw; }

  /// Measured extra positioning cost of discontinuous writes relative to
  /// reads (ms) — small requests pay settle + read-modify-write, large ones
  /// only settle.  The boundary mirrors the profiling request sizes.
  double write_surcharge_ms(sim::Bytes bytes) const {
    return bytes < sim::Bytes{32 * 1024} ? write_small_ms_ : write_large_ms_;
  }
  void set_write_surcharge(double small_ms, double large_ms) {
    write_small_ms_ = small_ms;
    write_large_ms_ = large_ms;
  }

  bool empty() const { return samples_.empty(); }
  const std::vector<Sample>& samples() const { return samples_; }

 private:
  std::vector<Sample> samples_;  // sorted by distance, monotone in ms
  sim::SimTime rotation_ = sim::SimTime::zero();
  double peak_bw_ = 0.0;
  double write_bw_ = 0.0;
  double write_small_ms_ = 0.0;
  double write_large_ms_ = 0.0;
};

/// Profiling configuration.
struct ProfilerConfig {
  std::int64_t probe_sectors = 8;          // 4 KB probes
  int probes_per_distance = 4;             // averaged
  int distance_points = 24;                // log-spaced sample distances
  std::int64_t stream_bytes = 64 << 20;    // streaming run for peak bandwidth
};

/// Runs the profiling workload against a device.  The device must be
/// otherwise idle; the caller supplies the simulator that owns it.
class DeviceProfiler {
 public:
  explicit DeviceProfiler(ProfilerConfig cfg = {}) : cfg_(cfg) {}

  /// Profile `dev` inside `sim` (runs the simulation to completion).
  SeekProfile profile(sim::Simulator& sim, BlockDevice& dev) const;

 private:
  ProfilerConfig cfg_;
};

}  // namespace ibridge::storage
