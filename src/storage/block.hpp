// Block-device abstraction shared by the HDD and SSD models.
//
// Addresses are logical block numbers (LBNs) in 512-byte sectors, matching
// the unit blktrace reports and the unit the paper's Equation (1) uses for
// seek-distance computation.
#pragma once

#include <cstdint>
#include <functional>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/sync.hpp"
#include "sim/time.hpp"
#include "stats/blocktrace.hpp"

namespace ibridge::storage {

using stats::IoDirection;

inline constexpr std::int64_t kSectorBytes = stats::kSectorBytes;

inline constexpr std::int64_t bytes_to_sectors(std::int64_t bytes) {
  return (bytes + kSectorBytes - 1) / kSectorBytes;
}

/// A single block-level request as submitted to a device queue.
struct BlockRequest {
  IoDirection dir = IoDirection::kRead;
  std::int64_t lbn = 0;      ///< first sector
  std::int64_t sectors = 0;  ///< length in sectors
  int tag = 0;               ///< issuing stream id (for anticipation)

  std::int64_t end() const { return lbn + sectors; }
  std::int64_t bytes() const { return sectors * kSectorBytes; }
};

/// Completion record delivered through the request's future.
struct BlockCompletion {
  sim::SimTime finished;  ///< absolute completion time
  sim::SimTime latency;   ///< finished - submitted (queueing + service)
  sim::SimTime service;   ///< device occupancy of the dispatch that served it
};

/// Common device interface.  submit() enqueues a request and returns a
/// future that resolves when the device completes it.  Devices are owned by
/// exactly one Simulator and are not thread-safe (the DES is single-threaded).
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual sim::SimFuture<BlockCompletion> submit(BlockRequest req) = 0;

  /// True while a dispatch is in flight or requests are queued.
  virtual bool busy() const = 0;
  virtual std::size_t queue_depth() const = 0;

  /// Total sectors addressable.
  virtual std::int64_t capacity_sectors() const = 0;

  stats::BlockTraceRecorder& trace() { return trace_; }
  const stats::BlockTraceRecorder& trace() const { return trace_; }

  /// Cumulative time the device spent serving requests (utilization).
  sim::SimTime busy_time() const { return busy_time_; }
  std::int64_t bytes_read() const { return bytes_read_; }
  std::int64_t bytes_written() const { return bytes_written_; }

  /// Attach a span TraceSession: every dispatch becomes a completed span on
  /// `track` (concurrent SSD channel dispatches overlap; the exporter lanes
  /// them out).  Null detaches.
  void set_span_trace(obs::TraceSession* session, obs::TrackId track) {
    obs_trace_ = session;
    obs_track_ = track;
  }

  /// Attach a SimProfiler: every dispatch marks the running simulator event
  /// with `category` ("disk"/"ssd"), so device service events show up in
  /// the per-subsystem time attribution.  Null detaches.
  void set_profiler(obs::SimProfiler* profiler, int category) {
    profiler_ = profiler;
    prof_cat_ = category;
  }

 protected:
  void account(IoDirection dir, std::int64_t bytes, sim::SimTime service) {
    busy_time_ += service;
    (dir == IoDirection::kRead ? bytes_read_ : bytes_written_) += bytes;
  }

  /// One-stop accounting for a dispatched batch: blktrace entry, byte/busy
  /// totals, and (when attached) a trace span covering the service window.
  void record_dispatch(sim::SimTime now, IoDirection dir, std::int64_t lbn,
                       std::int64_t sectors, sim::SimTime service) {
    const std::int64_t bytes = sectors * kSectorBytes;
    trace_.record(now, dir, lbn, sim::Bytes{bytes}, service);
    account(dir, bytes, service);
    if (profiler_ != nullptr) profiler_->mark(prof_cat_);
    if (obs_trace_ != nullptr) {
      const obs::SpanId s = obs_trace_->complete(
          obs_track_, dir == IoDirection::kRead ? "io.read" : "io.write",
          "device", now, service);
      obs_trace_->arg(s, "lbn", lbn);
      obs_trace_->arg(s, "sectors", sectors);
    }
  }

  stats::BlockTraceRecorder trace_;
  sim::SimTime busy_time_ = sim::SimTime::zero();
  std::int64_t bytes_read_ = 0;
  std::int64_t bytes_written_ = 0;
  obs::TraceSession* obs_trace_ = nullptr;
  obs::TrackId obs_track_ = obs::kNoTrack;
  obs::SimProfiler* profiler_ = nullptr;
  int prof_cat_ = 0;
};

}  // namespace ibridge::storage
