// Solid-state-drive service-time model.
//
// SSD service time has no mechanical component; the model charges a
// per-operation overhead that depends on direction and on whether the request
// continues the device's last access in that direction (flash translation
// and program costs make discontinuous writes markedly slower — the 140 vs
// 30 MB/s gap in the paper's Table II that iBridge's log-structured cache
// file exploits), plus transfer time at the interface rate.
//
// The SSD serves requests FIFO (the paper configures the Noop scheduler for
// its SSDs) with an internal parallelism of `channels` concurrent operations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "storage/block.hpp"
#include "storage/scheduler.hpp"

namespace ibridge::storage {

struct SsdParams {
  std::int64_t capacity_bytes = 120LL * 1000 * 1000 * 1000;  // 120 GB

  // Interface transfer rates (bytes/second), Table II sequential numbers.
  double seq_read_bw = 160e6;
  double seq_write_bw = 140e6;

  // Per-operation overhead (microseconds) when the request does NOT continue
  // the previous access in the same direction.  Calibrated against Table II:
  //   4 KB random read  @ 60 MB/s  -> ~68 us/op, transfer 25 us -> ~43 us
  //   4 KB random write @ 30 MB/s  -> ~136 us/op, transfer 29 us -> ~107 us
  double random_read_overhead_us = 43.0;
  double random_write_overhead_us = 107.0;

  // Small residual overhead for sequential continuations.
  double seq_overhead_us = 4.0;

  // Number of operations the device can service concurrently.
  int channels = 1;

  std::int64_t capacity_sectors() const {
    return capacity_bytes / kSectorBytes;
  }
};

/// Fault-injection attachment point for the SSD.  A hook installed on an
/// SsdModel is consulted once per dispatch and may add extra service latency
/// (garbage-collection pauses, per-read variability).  Only src/fault/ — the
/// deterministic, seeded fault engine — installs hooks (enforced by
/// ibridge-lint's ssd-fault-hook rule); with no hook the device timing is
/// byte-identical to a build without this class.
class SsdFaultHook {
 public:
  virtual ~SsdFaultHook() = default;

  /// Extra service latency for a dispatch starting at `now` whose healthy
  /// service time is `base_service`.  Must be non-negative and a pure
  /// function of the hook's own (seeded) state plus the arguments.
  virtual sim::SimTime dispatch_delay(IoDirection dir, std::int64_t lbn,
                                      std::int64_t sectors, sim::SimTime now,
                                      sim::SimTime base_service) = 0;
};

class SsdModel final : public BlockDevice {
 public:
  SsdModel(sim::Simulator& sim, SsdParams params,
           std::unique_ptr<IoScheduler> sched);

  /// Convenience: Noop (FIFO + merge) scheduler, as in the paper's setup.
  SsdModel(sim::Simulator& sim, SsdParams params);

  sim::SimFuture<BlockCompletion> submit(BlockRequest req) override;

  /// Install a fault hook (nullptr to detach).  Same zero-cost-when-null
  /// contract as the observer/trace hooks elsewhere in the simulator.
  void set_fault_hook(SsdFaultHook* hook) { fault_hook_ = hook; }

  bool busy() const override { return in_flight_ > 0 || !sched_->empty(); }
  std::size_t queue_depth() const override { return sched_->depth(); }
  std::int64_t capacity_sectors() const override {
    return params_.capacity_sectors();
  }

  const SsdParams& params() const { return params_; }

  /// Service time for a request given the device's current stream state.
  sim::SimTime service_time(IoDirection dir, std::int64_t lbn,
                            std::int64_t sectors) const;

 private:
  void maybe_start();
  void complete(int slot, sim::SimTime service);

  sim::Simulator& sim_;
  SsdParams params_;
  std::unique_ptr<IoScheduler> sched_;
  // One in-flight batch per busy channel.  Slots (and their members
  // capacity) are recycled through free_slots_, so steady-state dispatch
  // never allocates and the completion closure is just (this, slot, time).
  std::vector<DispatchBatch> slots_;
  std::vector<int> free_slots_;
  int in_flight_ = 0;
  // Expected next LBN per direction for sequential-continuation detection.
  std::int64_t next_read_lbn_ = -1;
  std::int64_t next_write_lbn_ = -1;
  SsdFaultHook* fault_hook_ = nullptr;
};

}  // namespace ibridge::storage
