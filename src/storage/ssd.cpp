#include "storage/ssd.hpp"

#include <cassert>
#include <memory>
#include <utility>

namespace ibridge::storage {

SsdModel::SsdModel(sim::Simulator& sim, SsdParams params,
                   std::unique_ptr<IoScheduler> sched)
    : sim_(sim), params_(params), sched_(std::move(sched)) {}

SsdModel::SsdModel(sim::Simulator& sim, SsdParams params)
    : SsdModel(sim, params, std::make_unique<NoopScheduler>()) {}

sim::SimTime SsdModel::service_time(IoDirection dir, std::int64_t lbn,
                                    std::int64_t sectors) const {
  const bool is_read = dir == IoDirection::kRead;
  const std::int64_t expected = is_read ? next_read_lbn_ : next_write_lbn_;
  const bool sequential = lbn == expected;

  double overhead_us;
  if (sequential) {
    overhead_us = params_.seq_overhead_us;
  } else {
    overhead_us = is_read ? params_.random_read_overhead_us
                          : params_.random_write_overhead_us;
  }
  const double bw = is_read ? params_.seq_read_bw : params_.seq_write_bw;
  const double xfer_s = static_cast<double>(sectors * kSectorBytes) / bw;
  return sim::SimTime::from_seconds(overhead_us / 1e6 + xfer_s);
}

sim::SimFuture<BlockCompletion> SsdModel::submit(BlockRequest req) {
  assert(req.sectors > 0);
  assert(req.lbn >= 0 && req.end() <= capacity_sectors());
  PendingRequest p{req, sim_.now(), sim::SimPromise<BlockCompletion>(sim_)};
  auto fut = p.promise.get_future();
  sched_->add(std::move(p));
  maybe_start();
  return fut;
}

void SsdModel::maybe_start() {
  while (in_flight_ < params_.channels && !sched_->empty()) {
    int slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<int>(slots_.size());
      slots_.emplace_back();
      free_slots_.reserve(slots_.size());  // complete() pushes alloc-free
    }
    DispatchBatch& batch = slots_[static_cast<std::size_t>(slot)];
    sched_->pop_next(/*head_lbn=*/0, batch);
    assert(!batch.empty());

    sim::SimTime service = service_time(batch.dir, batch.lbn, batch.sectors);
    if (fault_hook_ != nullptr) {
      // Injected latency (GC pause, read variability) is part of the service
      // time proper: it shows up in busy-time accounting, dispatch records,
      // and trace spans exactly like a slow device would.
      service += fault_hook_->dispatch_delay(batch.dir, batch.lbn,
                                             batch.sectors, sim_.now(), service);
    }
    if (batch.dir == IoDirection::kRead) {
      next_read_lbn_ = batch.end();
    } else {
      next_write_lbn_ = batch.end();
    }
    record_dispatch(sim_.now(), batch.dir, batch.lbn, batch.sectors, service);

    ++in_flight_;
    sim_.schedule(service, [this, slot, service] { complete(slot, service); });
  }
}

void SsdModel::complete(int slot, sim::SimTime service) {
  DispatchBatch& batch = slots_[static_cast<std::size_t>(slot)];
  const sim::SimTime now = sim_.now();
  for (auto& p : batch.members) {
    p.promise.set_value(BlockCompletion{now, now - p.submitted, service});
  }
  batch.reset();
  free_slots_.push_back(slot);
  --in_flight_;
  maybe_start();
}

}  // namespace ibridge::storage
