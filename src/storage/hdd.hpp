// Mechanical hard-disk service-time model.
//
// Service time of a dispatched (merged) request:
//
//   T = position(dir, seek_distance) + transfer(dir, bytes)
//
// where position() is zero for a sequential continuation (the request starts
// where the previous one ended) and otherwise
//
//   position = D_to_T(distance) + R
//
// with D_to_T the classical two-regime seek curve (square-root for short
// seeks, linear for long ones; Ruemmler & Wilkes) and R the average
// rotational delay (half a revolution).  transfer() uses the per-direction
// platter rate.  This is exactly the structure the paper's Equation (1)
// assumes, which lets iBridge's ServiceTimeModel estimate the disk well after
// offline profiling.
//
// Dispatch order and merging are delegated to an IoScheduler (CFQ-like
// ElevatorScheduler by default).  A one-shot anticipation window emulates
// CFQ/AS idling: if the best queued request requires a long seek, the device
// briefly waits for a nearer request to arrive before committing.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>

#include "sim/simulator.hpp"
#include "storage/block.hpp"
#include "storage/scheduler.hpp"

namespace ibridge::storage {

/// Tunable characteristics of the modelled disk.
struct HddParams {
  std::int64_t capacity_bytes = 1'000LL * 1000 * 1000 * 1000;  // 1 TB

  // Media transfer rates (bytes/second).
  double seq_read_bw = 85e6;   // Table II: 85 MB/s
  double seq_write_bw = 80e6;  // Table II: 80 MB/s

  // Seek curve: D_to_T(d) = a + b*sqrt(d) for d < boundary, else c + e*d,
  // with d in sectors.  Defaults give ~0.25 ms track-to-track and ~8 ms
  // full-stroke seeks on the 1 TB geometry.
  double seek_a_ms = 0.20;
  double seek_b_ms = 2.4e-3;     // * sqrt(sectors)
  std::int64_t seek_boundary = 4'000'000;  // ~2 GB in sectors
  double seek_c_ms = 4.0;
  double seek_e_ms = 2.05e-9;    // * sectors

  // Effective rotational delay on a discontinuous access.  7200 RPM is
  // 8.33 ms/rev (4.17 ms average miss); NCQ's rotational-position-aware
  // ordering roughly halves the realized penalty, and the paper's testbed
  // ran with NCQ enabled.
  double rotation_ms = 2.2;

  // Extra positioning penalty for non-sequential writes (settle +
  // write-verify margin).
  double write_settle_ms = 0.1;
  // Additional penalty for *small* discontinuous writes (read-modify-write
  // and cache-flush behaviour); drives the random-write weakness of
  // Table II (5 vs 15 MB/s) and the larger unaligned-write degradation the
  // paper reports for the stock system.
  std::int64_t small_write_sectors = 64;  // < 32 KB
  double small_write_penalty_ms = 3.0;

  // Per-dispatch controller overhead.
  double overhead_us = 50.0;

  // Requests landing within this many sectors of the head are treated as
  // near-sequential: no full seek, only a short settle.  Writes get a wider
  // window: the on-drive write cache absorbs skip-sequential writes (e.g.
  // iBridge's sorted write-back runs with ~64 KB gaps) and commits them in
  // one pass.
  std::int64_t near_sectors = 64;        // 32 KB (reads)
  std::int64_t write_near_sectors = 256; // 128 KB (writes)
  double near_settle_ms = 0.8;

  // Anticipation (CFQ-style idling): after a dispatch, briefly hold the
  // disk for the same stream's next synchronous request instead of seeking
  // away.  0 disables.  `anticipate_writes` extends idling to write
  // streams — PVFS2's Trove I/O is synchronous at the server, so its write
  // sub-requests behave like sync queues to CFQ.
  double anticipation_ms = 1.2;
  bool anticipate_writes = true;

  // Rotational re-synchronization: when a dispatch *continues* a sequential
  // stream but the device sat idle in between (the synchronous client had
  // not yet issued the next request), the target sector has rotated past
  // and the head must wait for it to come around again.  Charged when the
  // idle gap exceeds `idle_gap_us`.  This is what capped the paper's
  // testbed at ~20 MB/s per server for gap-ridden synchronous streams
  // despite an 85 MB/s platter rate.
  double idle_resync_ms = 2.6;
  double idle_gap_us = 100.0;

  std::int64_t capacity_sectors() const {
    return capacity_bytes / kSectorBytes;
  }
};

class HddModel final : public BlockDevice {
 public:
  HddModel(sim::Simulator& sim, HddParams params,
           std::unique_ptr<IoScheduler> sched);

  /// Convenience: CFQ scheduler (the paper's data-server configuration).
  HddModel(sim::Simulator& sim, HddParams params);

  sim::SimFuture<BlockCompletion> submit(BlockRequest req) override;

  bool busy() const override { return state_ != State::kIdle; }
  std::size_t queue_depth() const override { return sched_->depth(); }
  std::int64_t capacity_sectors() const override {
    return params_.capacity_sectors();
  }

  const HddParams& params() const { return params_; }
  std::int64_t head_lbn() const { return head_; }

  /// The model's own seek curve (ground truth the profiler tries to learn).
  sim::SimTime seek_time(std::int64_t distance_sectors) const;

  /// Full service time the model would charge for a request at `lbn` given
  /// the current head position.  `after_idle` adds the rotational re-sync
  /// cost for stream continuations following an idle gap.  Exposed for
  /// tests and the Table II bench.
  sim::SimTime service_time(IoDirection dir, std::int64_t lbn,
                            std::int64_t sectors,
                            bool after_idle = false) const;

 private:
  // kPlugged models block-layer plugging: a dispatch decision scheduled for
  // the end of the current tick, so requests submitted together can merge
  // in the scheduler queue before the device commits to one.
  enum class State { kIdle, kPlugged, kAnticipating, kServing };

  void maybe_start();
  void unplug();
  void dispatch();
  void complete(sim::SimTime service);

  sim::Simulator& sim_;
  HddParams params_;
  std::unique_ptr<IoScheduler> sched_;
  // The disk serves one dispatch at a time (the state machine below), so
  // the in-flight batch lives here and is recycled — members capacity and
  // all — instead of being heap-shipped through the completion closure.
  DispatchBatch inflight_;
  State state_ = State::kIdle;
  std::int64_t head_ = 0;
  int last_tag_ = -1;              // stream served by the last dispatch
  IoDirection last_dir_ = IoDirection::kRead;
  sim::SimTime last_completion_ = SimTimeNegOne();
  std::uint64_t antic_epoch_ = 0;  // invalidates stale anticipation timers

  static sim::SimTime SimTimeNegOne() {
    return sim::SimTime::zero() - sim::SimTime::nanos(1);
  }
};

}  // namespace ibridge::storage
