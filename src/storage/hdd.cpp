#include "storage/hdd.hpp"

#include <cassert>
#include <cstdlib>
#include <utility>

namespace ibridge::storage {

HddModel::HddModel(sim::Simulator& sim, HddParams params,
                   std::unique_ptr<IoScheduler> sched)
    : sim_(sim), params_(params), sched_(std::move(sched)) {}

HddModel::HddModel(sim::Simulator& sim, HddParams params)
    : HddModel(sim, params, std::make_unique<CfqScheduler>()) {}

sim::SimTime HddModel::seek_time(std::int64_t d) const {
  if (d == 0) return sim::SimTime::zero();
  double ms;
  if (d < params_.seek_boundary) {
    ms = params_.seek_a_ms + params_.seek_b_ms * std::sqrt(static_cast<double>(d));
  } else {
    ms = params_.seek_c_ms + params_.seek_e_ms * static_cast<double>(d);
  }
  return sim::SimTime::from_seconds(ms / 1e3);
}

sim::SimTime HddModel::service_time(IoDirection dir, std::int64_t lbn,
                                    std::int64_t sectors,
                                    bool after_idle) const {
  const std::int64_t dist = std::llabs(lbn - head_);
  const std::int64_t near = dir == IoDirection::kWrite
                                ? params_.write_near_sectors
                                : params_.near_sectors;
  double pos_ms = 0.0;
  bool far = false;
  if (dist <= near) {
    if (after_idle) {
      // Stream continuation after an idle gap: the target sector has
      // rotated past; wait for it to come around.
      pos_ms = params_.idle_resync_ms;
    } else if (dist > 0) {
      pos_ms = params_.near_settle_ms;
    }
    // else: back-to-back sequential streaming, free.
  } else {
    pos_ms = seek_time(dist).to_seconds() * 1e3 + params_.rotation_ms;
    far = true;
  }
  if (dist != 0 && dir == IoDirection::kWrite) {
    pos_ms += params_.write_settle_ms;
    if (far && sectors < params_.small_write_sectors) {
      pos_ms += params_.small_write_penalty_ms;
    }
  }

  const double bw =
      dir == IoDirection::kRead ? params_.seq_read_bw : params_.seq_write_bw;
  const double xfer_s = static_cast<double>(sectors * kSectorBytes) / bw;
  return sim::SimTime::from_seconds(pos_ms / 1e3 + xfer_s) +
         sim::SimTime::from_seconds(params_.overhead_us / 1e6);
}

sim::SimFuture<BlockCompletion> HddModel::submit(BlockRequest req) {
  assert(req.sectors > 0);
  assert(req.lbn >= 0 && req.end() <= capacity_sectors());
  PendingRequest p{req, sim_.now(), sim::SimPromise<BlockCompletion>(sim_)};
  auto fut = p.promise.get_future();
  // CFQ-style anticipation: the disk idles after a dispatch waiting for the
  // same stream's next synchronous request; that arrival (or a near-head
  // one) ends the idling immediately.
  const bool wanted =
      req.tag == last_tag_ ||
      std::llabs(req.lbn - head_) <= params_.near_sectors;
  sched_->add(std::move(p));
  if (state_ == State::kAnticipating && wanted) {
    ++antic_epoch_;  // invalidate the pending timer
    dispatch();
  } else {
    maybe_start();
  }
  return fut;
}

void HddModel::maybe_start() {
  if (state_ != State::kIdle) return;
  if (sched_->empty()) return;
  // Plug: decide at the end of the current tick so that requests submitted
  // together can merge in the queue first.
  state_ = State::kPlugged;
  sim_.defer([this] {
    if (state_ == State::kPlugged) {
      state_ = State::kIdle;
      unplug();
    }
  });
}

void HddModel::unplug() {
  if (state_ != State::kIdle) return;
  if (sched_->empty()) return;

  // If the best candidate needs a real seek, idle briefly in the hope that
  // the last stream continues near the head (models CFQ/AS idling for the
  // synchronous per-process streams the paper's workloads generate).  CFQ
  // only idles for synchronous (read) queues; buffered writes never
  // anticipate.
  const auto next = sched_->peek(head_);
  if (params_.anticipation_ms > 0 && next &&
      next->distance > params_.near_sectors && last_tag_ >= 0 &&
      next->tag != last_tag_ &&  // don't idle when the continuation is here
      (last_dir_ == IoDirection::kRead || params_.anticipate_writes)) {
    state_ = State::kAnticipating;
    const std::uint64_t epoch = ++antic_epoch_;
    sim_.schedule(sim::SimTime::from_seconds(params_.anticipation_ms / 1e3),
                  [this, epoch] {
                    if (state_ == State::kAnticipating && antic_epoch_ == epoch)
                      dispatch();
                  });
    return;
  }
  dispatch();
}

void HddModel::dispatch() {
  sched_->pop_next(head_, inflight_);
  if (inflight_.empty()) {
    state_ = State::kIdle;
    return;
  }
  state_ = State::kServing;
  last_tag_ = inflight_.members.front().req.tag;
  last_dir_ = inflight_.dir;

  const bool after_idle =
      last_completion_ >= sim::SimTime::zero() &&
      (sim_.now() - last_completion_) >
          sim::SimTime::from_seconds(params_.idle_gap_us / 1e6);
  const sim::SimTime service =
      service_time(inflight_.dir, inflight_.lbn, inflight_.sectors, after_idle);
  record_dispatch(sim_.now(), inflight_.dir, inflight_.lbn, inflight_.sectors,
                  service);

  // The batch stays in inflight_ (one dispatch at a time), so the closure
  // fits the inline event and steady-state dispatch never allocates.
  sim_.schedule(service, [this, service] { complete(service); });
}

void HddModel::complete(sim::SimTime service) {
  head_ = inflight_.end();
  last_completion_ = sim_.now();
  const sim::SimTime now = sim_.now();
  for (auto& p : inflight_.members) {
    p.promise.set_value(BlockCompletion{now, now - p.submitted, service});
  }
  inflight_.reset();
  state_ = State::kIdle;
  maybe_start();
}

}  // namespace ibridge::storage
