#include "storage/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>

namespace ibridge::storage {

namespace {

bool mergeable(const DispatchBatch& b, const BlockRequest& r,
               std::int64_t max_sectors) {
  return r.dir == b.dir && b.sectors + r.sectors <= max_sectors &&
         (r.lbn == b.end() || r.end() == b.lbn);
}

void absorb(DispatchBatch& b, PendingRequest p) {
  if (p.req.lbn < b.lbn) b.lbn = p.req.lbn;
  b.sectors += p.req.sectors;
  b.members.push_back(std::move(p));
}

}  // namespace

// ---------------------------------------------------------------- Noop ----

void NoopScheduler::add(PendingRequest p) {
  // Reclaim the dead prefix left by popped heads before growing the tail:
  // when it dominates the buffer, shift the live range down in place.  The
  // buffer's capacity is reused forever, so a steady-state queue never
  // allocates.
  if (head_ == queue_.size()) {
    queue_.clear();
    head_ = 0;
  } else if (head_ > 64 && head_ * 2 > queue_.size()) {
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  queue_.push_back(std::move(p));
}

void NoopScheduler::pop_next(std::int64_t /*head_lbn*/, DispatchBatch& out) {
  out.reset();
  if (head_ == queue_.size()) return;

  PendingRequest& front = queue_[head_];
  out.dir = front.req.dir;
  out.lbn = front.req.lbn;
  out.sectors = front.req.sectors;
  out.members.push_back(std::move(front));
  ++head_;

  // Scan the rest of the queue for front-/back-mergeable requests.  A merge
  // can enable another one, so repeat until a pass makes no progress.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = head_; i < queue_.size(); ++i) {
      if (mergeable(out, queue_[i].req, max_sectors_)) {
        absorb(out, std::move(queue_[i]));
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        progress = true;
        break;
      }
    }
  }
  if (head_ == queue_.size()) {
    queue_.clear();
    head_ = 0;
  }
}

std::optional<PeekInfo> NoopScheduler::peek(std::int64_t head_lbn) const {
  if (head_ == queue_.size()) return std::nullopt;
  return PeekInfo{std::llabs(queue_[head_].req.lbn - head_lbn),
                  queue_[head_].req.tag};
}

// ------------------------------------------------------------ Elevator ----

void ElevatorScheduler::add(PendingRequest p) {
  auto it = std::upper_bound(
      sorted_.begin(), sorted_.end(), p.req.lbn,
      [](std::int64_t lbn, const PendingRequest& q) { return lbn < q.req.lbn; });
  sorted_.insert(it, std::move(p));
}

std::size_t ElevatorScheduler::pick_index(std::int64_t head_lbn) const {
  assert(!sorted_.empty());
  // First request at or after the head (SCAN direction: ascending), else
  // wrap around to the lowest LBN.
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), head_lbn,
      [](const PendingRequest& q, std::int64_t lbn) { return q.req.lbn < lbn; });
  if (it == sorted_.end()) it = sorted_.begin();
  return static_cast<std::size_t>(it - sorted_.begin());
}

void ElevatorScheduler::pop_next(std::int64_t head_lbn, DispatchBatch& out) {
  out.reset();
  if (sorted_.empty()) return;

  std::size_t i = pick_index(head_lbn);
  out.dir = sorted_[i].req.dir;
  out.lbn = sorted_[i].req.lbn;
  out.sectors = sorted_[i].req.sectors;
  out.members.push_back(std::move(sorted_[i]));
  sorted_.erase(sorted_.begin() + static_cast<std::ptrdiff_t>(i));

  // Absorb queued requests contiguous with the batch tail (ascending merge;
  // the vector is sorted so contiguous successors sit right at `i`).
  while (i < sorted_.size() && mergeable(out, sorted_[i].req, max_sectors_) &&
         sorted_[i].req.lbn == out.end()) {
    absorb(out, std::move(sorted_[i]));
    sorted_.erase(sorted_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  // And any front-contiguous predecessor (rare, but keeps parity with noop).
  while (i > 0 && mergeable(out, sorted_[i - 1].req, max_sectors_) &&
         sorted_[i - 1].req.end() == out.lbn) {
    absorb(out, std::move(sorted_[i - 1]));
    sorted_.erase(sorted_.begin() + static_cast<std::ptrdiff_t>(i - 1));
    --i;
  }
}

std::optional<PeekInfo> ElevatorScheduler::peek(std::int64_t head_lbn) const {
  if (sorted_.empty()) return std::nullopt;
  const PendingRequest& r = sorted_[pick_index(head_lbn)];
  return PeekInfo{std::llabs(r.req.lbn - head_lbn), r.req.tag};
}

}  // namespace ibridge::storage
