#include "storage/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>

namespace ibridge::storage {

namespace {

bool mergeable(const DispatchBatch& b, const BlockRequest& r,
               std::int64_t max_sectors) {
  return r.dir == b.dir && b.sectors + r.sectors <= max_sectors &&
         (r.lbn == b.end() || r.end() == b.lbn);
}

void absorb(DispatchBatch& b, PendingRequest p) {
  if (p.req.lbn < b.lbn) b.lbn = p.req.lbn;
  b.sectors += p.req.sectors;
  b.members.push_back(std::move(p));
}

}  // namespace

// ---------------------------------------------------------------- Noop ----

void NoopScheduler::add(PendingRequest p) { queue_.push_back(std::move(p)); }

DispatchBatch NoopScheduler::pop_next(std::int64_t /*head_lbn*/) {
  DispatchBatch batch;
  if (queue_.empty()) return batch;

  batch.dir = queue_.front().req.dir;
  batch.lbn = queue_.front().req.lbn;
  batch.sectors = queue_.front().req.sectors;
  batch.members.push_back(std::move(queue_.front()));
  queue_.pop_front();

  // Scan the rest of the queue for front-/back-mergeable requests.  A merge
  // can enable another one, so repeat until a pass makes no progress.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (mergeable(batch, it->req, max_sectors_)) {
        absorb(batch, std::move(*it));
        queue_.erase(it);
        progress = true;
        break;
      }
    }
  }
  return batch;
}

std::optional<PeekInfo> NoopScheduler::peek(std::int64_t head_lbn) const {
  if (queue_.empty()) return std::nullopt;
  return PeekInfo{std::llabs(queue_.front().req.lbn - head_lbn),
                  queue_.front().req.tag};
}

// ------------------------------------------------------------ Elevator ----

void ElevatorScheduler::add(PendingRequest p) {
  auto it = std::upper_bound(
      sorted_.begin(), sorted_.end(), p.req.lbn,
      [](std::int64_t lbn, const PendingRequest& q) { return lbn < q.req.lbn; });
  sorted_.insert(it, std::move(p));
}

std::size_t ElevatorScheduler::pick_index(std::int64_t head_lbn) const {
  assert(!sorted_.empty());
  // First request at or after the head (SCAN direction: ascending), else
  // wrap around to the lowest LBN.
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), head_lbn,
      [](const PendingRequest& q, std::int64_t lbn) { return q.req.lbn < lbn; });
  if (it == sorted_.end()) it = sorted_.begin();
  return static_cast<std::size_t>(it - sorted_.begin());
}

DispatchBatch ElevatorScheduler::pop_next(std::int64_t head_lbn) {
  DispatchBatch batch;
  if (sorted_.empty()) return batch;

  std::size_t i = pick_index(head_lbn);
  batch.dir = sorted_[i].req.dir;
  batch.lbn = sorted_[i].req.lbn;
  batch.sectors = sorted_[i].req.sectors;
  batch.members.push_back(std::move(sorted_[i]));
  sorted_.erase(sorted_.begin() + static_cast<std::ptrdiff_t>(i));

  // Absorb queued requests contiguous with the batch tail (ascending merge;
  // the vector is sorted so contiguous successors sit right at `i`).
  while (i < sorted_.size() && mergeable(batch, sorted_[i].req, max_sectors_) &&
         sorted_[i].req.lbn == batch.end()) {
    absorb(batch, std::move(sorted_[i]));
    sorted_.erase(sorted_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  // And any front-contiguous predecessor (rare, but keeps parity with noop).
  while (i > 0 && mergeable(batch, sorted_[i - 1].req, max_sectors_) &&
         sorted_[i - 1].req.end() == batch.lbn) {
    absorb(batch, std::move(sorted_[i - 1]));
    sorted_.erase(sorted_.begin() + static_cast<std::ptrdiff_t>(i - 1));
    --i;
  }
  return batch;
}

std::optional<PeekInfo> ElevatorScheduler::peek(std::int64_t head_lbn) const {
  if (sorted_.empty()) return std::nullopt;
  const PendingRequest& r = sorted_[pick_index(head_lbn)];
  return PeekInfo{std::llabs(r.req.lbn - head_lbn), r.req.tag};
}

}  // namespace ibridge::storage
