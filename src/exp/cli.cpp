#include "exp/cli.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace ibridge::exp {

namespace {

/// from_chars over the whole string, with 0x/0X detection.  `s` must not
/// include a sign.
template <typename T>
std::optional<T> parse_whole(const std::string& s) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    first += 2;
  }
  T value{};
  const auto [ptr, ec] = std::from_chars(first, last, value, base);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

}  // namespace

std::optional<std::int64_t> parse_int(const std::string& s, std::int64_t min,
                                      std::int64_t max) {
  if (s.empty()) return std::nullopt;
  std::optional<std::int64_t> v;
  if (s[0] == '-') {
    // from_chars handles the sign for base 10, but not "-0x..."; parse the
    // magnitude and negate so hex works uniformly.
    const auto mag = parse_whole<std::uint64_t>(s.substr(1));
    if (!mag || *mag > 0x8000000000000000ULL) return std::nullopt;
    v = static_cast<std::int64_t>(0ULL - *mag);
  } else {
    const auto mag = parse_whole<std::uint64_t>(s);
    if (!mag || *mag > 0x7fffffffffffffffULL) return std::nullopt;
    v = static_cast<std::int64_t>(*mag);
  }
  if (*v < min || *v > max) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty() || s[0] == '-') return std::nullopt;
  return parse_whole<std::uint64_t>(s);
}

std::int64_t require_int(const char* tool, const char* what,
                         const std::string& s, std::int64_t min,
                         std::int64_t max) {
  const auto v = parse_int(s, min, max);
  if (!v) {
    std::fprintf(stderr, "%s: invalid %s '%s' (expected integer in [%lld, %lld])\n",
                 tool, what, s.c_str(), static_cast<long long>(min),
                 static_cast<long long>(max));
    std::exit(2);
  }
  return *v;
}

std::uint64_t require_u64(const char* tool, const char* what,
                          const std::string& s) {
  const auto v = parse_u64(s);
  if (!v) {
    std::fprintf(stderr, "%s: invalid %s '%s' (expected unsigned integer)\n",
                 tool, what, s.c_str());
    std::exit(2);
  }
  return *v;
}

}  // namespace ibridge::exp
