// Machine-readable benchmark gauges: BENCH_<name>.json.
//
// Every bench and the CI bench-gauge job emit one Gauge per run so that
// performance is a *recorded trajectory*, not a number scrolled past in a
// log.  A gauge separates two kinds of measurement:
//
//   model  — deterministic simulation outputs (simulated seconds, request
//            counts, MetricsRegistry rows).  Identical on every rerun and
//            at every --jobs level; determinism tests compare exactly this
//            projection (json(/*include_wall=*/false)).
//   wall   — host-machine timings (seconds, events/sec).  Real but noisy;
//            excluded from determinism comparison by construction.
//
// Schema (documented in docs/PERF.md, validated by CI):
//   {
//     "bench":  "<name>",
//     "schema": "ibridge-bench-gauge-v1",
//     "model":  { "<key>": <number>, ... },   // sorted keys
//     "wall":   { "<key>": <number>, ... }    // sorted keys, may be absent
//   }
#pragma once

#include <chrono>
#include <iosfwd>
#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace ibridge::exp {

class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Record a deterministic model metric.
  void set(const std::string& key, double value) { model_[key] = value; }

  /// Record a host wall-clock measurement.
  void set_wall(const std::string& key, double value) { wall_[key] = value; }

  /// Copy every flattened row of `reg` into the model section, prefixed.
  void add_metrics(const obs::MetricsRegistry& reg,
                   const std::string& prefix = "");

  const std::map<std::string, double>& model() const { return model_; }
  const std::map<std::string, double>& wall() const { return wall_; }

  /// The gauge as JSON (keys sorted, numbers in round-trip precision).
  /// include_wall=false omits the "wall" object entirely — the projection
  /// determinism tests compare byte-for-byte.
  std::string json(bool include_wall = true) const;
  void write_json(std::ostream& os, bool include_wall = true) const;

  /// Write BENCH_<name>.json into `dir`.  Returns false on I/O failure.
  bool write_file(const std::string& dir = ".") const;

  static constexpr const char* kSchema = "ibridge-bench-gauge-v1";

 private:
  std::string name_;
  std::map<std::string, double> model_;
  std::map<std::string, double> wall_;
};

/// Peak resident set size of this process in MB (VmHWM from
/// /proc/self/status, 1 MB = 10^6 bytes); 0.0 when unavailable (non-Linux
/// hosts).  A host measurement — record it under set_wall(), never as a
/// model metric.
double peak_rss_mb();

/// The getrusage(RUSAGE_SELF) path peak_rss_mb() falls back to when
/// /proc/self/status is unavailable.  Exposed so tests can pin the fallback
/// independently of procfs; 0.0 only on non-POSIX hosts.
double peak_rss_mb_rusage();

/// Minimal wall timer for gauge "wall" entries.  steady_clock, so it never
/// jumps; never used for model time (the lint wall-clock rule still bans
/// calendar clocks in model code).
class Stopwatch {
 public:
  Stopwatch() : t0_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction.
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace ibridge::exp
