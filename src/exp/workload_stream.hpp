// Streaming workload generation for scale campaigns.
//
// The Table I synthesizer (workloads::TraceSynthesizer) materializes a
// whole Trace vector before replay — fine at 10^4 requests, hopeless at a
// million-rank campaign where the request list alone would dwarf the
// simulated cluster.  WorkloadStream is the same generator turned inside
// out: an O(1)-state iterator (one Rng + one cursor) that yields records on
// demand.  TraceSynthesizer::generate() delegates to it record-for-record,
// so for a given (profile, unit, file_bytes, seed) the streamed sequence is
// digest-identical to the materialized one — the equivalence the scale
// benches and the stream tests pin down.
//
// Lives in exp (sim-only dependencies) so both workloads/ and bench/ can
// reach it without a layering cycle; workloads adapts its TraceProfile /
// TraceRecord types at the call site.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/rng.hpp"

namespace ibridge::exp {

/// One generated request (mirrors workloads::TraceRecord, which workloads
/// converts to — exp cannot depend on workloads).
struct StreamRecord {
  bool write = false;
  std::int64_t offset = 0;
  std::int64_t size = 0;
};

/// Distributional parameters (mirrors workloads::TraceProfile minus the
/// display name).
struct StreamProfile {
  double unaligned_frac = 0.0;  ///< requests larger than the unit, unaligned
  double random_frac = 0.0;     ///< requests below the random threshold
  std::int64_t large_size = 0;  ///< typical size of large requests (bytes)
  std::int64_t small_size = 0;  ///< typical size of random requests (bytes)
  double write_frac = 0.7;      ///< checkpoint-style traces are write-heavy
};

/// Seeded, allocation-free request generator.  State is one Rng and a
/// sequential cursor; next() is the loop body of the classic synthesizer,
/// drawing from the Rng in exactly the same order.
class WorkloadStream {
 public:
  WorkloadStream(const StreamProfile& profile, std::int64_t stripe_unit,
                 std::int64_t file_bytes, std::uint64_t seed)
      : profile_(profile),
        unit_(stripe_unit),
        file_bytes_(file_bytes),
        aligned_large_frac_(std::max(
            0.0, 1.0 - profile.unaligned_frac - profile.random_frac)),
        rng_(seed) {}

  /// The next record of the stream.  Never allocates — a million-rank
  /// campaign calls this from the steady-state serve path.
  // lint: no-alloc
  StreamRecord next() {
    StreamRecord r;
    r.write = rng_.chance(profile_.write_frac);
    const double u = rng_.uniform01();
    if (u < profile_.random_frac) {
      // Regular random request: small, anywhere in the file.
      r.size = std::max<std::int64_t>(
          512,
          profile_.small_size / 2 + rng_.uniform(0, profile_.small_size));
      r.offset =
          rng_.uniform(0, std::max<std::int64_t>(1, file_bytes_ - r.size));
    } else if (u < profile_.random_frac + aligned_large_frac_) {
      // Aligned large request: unit-multiple size at a unit boundary.
      const std::int64_t units =
          std::max<std::int64_t>(1, profile_.large_size / unit_);
      r.size = units * unit_;
      cursor_ = (cursor_ / unit_) * unit_;
      if (cursor_ + r.size > file_bytes_) cursor_ = 0;
      r.offset = cursor_;
      cursor_ += r.size;
    } else {
      // Unaligned large request: bigger than a unit, odd size or offset.
      r.size = profile_.large_size +
               rng_.uniform(1, std::max<std::int64_t>(2, unit_ / 2));
      if (cursor_ + r.size > file_bytes_) cursor_ = 0;
      r.offset = cursor_;
      cursor_ += r.size;
    }
    ++generated_;
    return r;
  }

  std::int64_t file_bytes() const { return file_bytes_; }
  std::uint64_t generated() const { return generated_; }

 private:
  StreamProfile profile_;
  std::int64_t unit_;
  std::int64_t file_bytes_;
  double aligned_large_frac_;
  sim::Rng rng_;
  std::int64_t cursor_ = 0;
  std::uint64_t generated_ = 0;
};

}  // namespace ibridge::exp
