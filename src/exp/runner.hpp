// Deterministic parallel experiment runner.
//
// Every experiment in this repo — SimCheck fuzz iterations, bench sweep
// cells, workload-sweep test cases — is an *independent* function of its
// inputs: each job builds its own Cluster (own Simulator, own Rng, own
// MetricsRegistry) and shares no mutable state with its neighbours.  Runner
// exploits that embarrassing parallelism without giving up reproducibility:
//
//   - a fixed pool of `jobs` worker threads, spun up once;
//   - jobs are claimed by atomic next-index, NOT work stealing — which
//     worker runs a job is scheduling noise, but *what* each job computes
//     depends only on its index;
//   - results are committed into a vector slot chosen by submission index,
//     so the collected output is byte-identical to a serial run regardless
//     of completion order (tests/test_exp.cpp proves it);
//   - jobs <= 1 runs everything inline on the calling thread — the serial
//     reference path, with no threads involved at all.
//
// The first exception thrown by any job is rethrown on the calling thread
// after the batch drains; remaining jobs still run (their slots are valid).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ibridge::exp {

class Runner {
 public:
  /// `jobs` is the worker-thread count; <= 1 means run inline (serial).
  explicit Runner(int jobs = 1);
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  int jobs() const { return jobs_; }

  /// One progress snapshot of the batch currently in run().
  struct Progress {
    int completed = 0;    ///< jobs finished so far
    int total = 0;        ///< batch size
    double seconds = 0.0; ///< host time since the batch started
  };

  /// Install a periodic progress callback (nullptr/empty detaches): during
  /// run(), a snapshot is delivered roughly every `interval_s` host seconds
  /// plus once when the batch completes.  The callback always runs on the
  /// calling thread — never on a worker — so it may print or update a
  /// Gauge without synchronization.  Progress is wall-clock plumbing only;
  /// it cannot affect job results.  Not callable while a run() is active.
  void set_progress(std::function<void(const Progress&)> cb,
                    double interval_s = 1.0);

  /// Invoke fn(i) for every i in [0, n), distributed over the pool; blocks
  /// until all n calls returned.  fn must not touch shared mutable state
  /// except through its own index (e.g. writing out[i]).
  void run(int n, const std::function<void(int)>& fn);

  /// run() collecting return values: out[i] = fn(i), committed by index.
  /// R must be default-constructible and movable.
  template <typename R>
  std::vector<R> map(int n, const std::function<R(int)>& fn) {
    std::vector<R> out(static_cast<std::size_t>(n < 0 ? 0 : n));
    run(n, [&](int i) { out[static_cast<std::size_t>(i)] = fn(i); });
    return out;
  }

  /// A sensible default for --jobs: hardware concurrency clamped to [1, 16]
  /// (results never depend on it — only wall time does).
  static int default_jobs();

 private:
  void worker();

  const int jobs_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a batch
  std::condition_variable done_cv_;   // run() waits for completion
  const std::function<void(int)>* fn_ = nullptr;
  int batch_n_ = 0;
  int next_ = 0;       // next unclaimed job index
  int completed_ = 0;  // jobs finished (success or failure)
  bool stop_ = false;
  std::exception_ptr error_;
  std::function<void(const Progress&)> progress_;
  double progress_interval_ = 1.0;
};

}  // namespace ibridge::exp
