#include "exp/gauge.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace ibridge::exp {

void Gauge::add_metrics(const obs::MetricsRegistry& reg,
                        const std::string& prefix) {
  for (const auto& [name, value] : reg.flatten()) {
    model_[prefix + name] = value;
  }
}

namespace {

/// Round-trip double formatting: shortest-ish, locale-independent, and —
/// what the determinism tests rely on — a pure function of the bits.
void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_section(std::string& out, const char* key,
                    const std::map<std::string, double>& rows) {
  out += "  \"";
  out += key;
  out += "\": {";
  bool first = true;
  for (const auto& [name, value] : rows) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += name;  // metric names are [A-Za-z0-9._-]; no escaping needed
    out += "\": ";
    append_number(out, value);
  }
  out += rows.empty() ? "}" : "\n  }";
}

}  // namespace

std::string Gauge::json(bool include_wall) const {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"" + name_ + "\",\n";
  out += "  \"schema\": \"";
  out += kSchema;
  out += "\",\n";
  append_section(out, "model", model_);
  if (include_wall) {
    out += ",\n";
    append_section(out, "wall", wall_);
  }
  out += "\n}\n";
  return out;
}

void Gauge::write_json(std::ostream& os, bool include_wall) const {
  os << json(include_wall);
}

double peak_rss_mb_rusage() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / 1e6;  // bytes on Darwin
#else
  return static_cast<double>(ru.ru_maxrss) * 1e3 / 1e6;  // KB on Linux
#endif
#else
  return 0.0;
#endif
}

double peak_rss_mb() {
  std::ifstream status("/proc/self/status");
  if (status) {
    std::string line;
    while (std::getline(status, line)) {
      if (line.rfind("VmHWM:", 0) != 0) continue;
      // "VmHWM:    12345 kB"
      std::istringstream fields(line.substr(6));
      double kb = 0.0;
      fields >> kb;
      return kb * 1e3 / 1e6;
    }
  }
  // No procfs (non-Linux hosts, hardened mounts): fall back to getrusage.
  return peak_rss_mb_rusage();
}

bool Gauge::write_file(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream os(path);
  if (!os) return false;
  os << json(/*include_wall=*/true);
  return static_cast<bool>(os);
}

}  // namespace ibridge::exp
