// Checked CLI argument parsing shared by tools, benches, and examples.
//
// std::atoi returns 0 on garbage and has undefined behaviour on overflow —
// `ibridge-simcheck --iters 10O` (typo) silently became a 0-iteration "all
// green" run.  These helpers accept exactly a full base-10 (or 0x-prefixed
// hexadecimal) integer, reject everything else, and either report nullopt
// (parse_*) or print a diagnostic and exit(2) (require_*), matching the
// usage-error exit code the tools already use.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ibridge::exp {

/// The whole of `s` must be an integer in [min, max].  Accepts an optional
/// leading '-' and a 0x/0X prefix for hexadecimal.  Returns nullopt on
/// empty input, trailing garbage, overflow, or range violation.
std::optional<std::int64_t> parse_int(
    const std::string& s, std::int64_t min = INT64_MIN,
    std::int64_t max = INT64_MAX);

/// Unsigned variant (no leading '-'); same strictness.  Used for seeds.
std::optional<std::uint64_t> parse_u64(const std::string& s);

/// parse_int or `exit(2)` with "<tool>: invalid <what> '<s>'" on stderr.
std::int64_t require_int(const char* tool, const char* what,
                         const std::string& s, std::int64_t min,
                         std::int64_t max);

/// parse_u64 or `exit(2)` with the same diagnostic shape.
std::uint64_t require_u64(const char* tool, const char* what,
                          const std::string& s);

}  // namespace ibridge::exp
