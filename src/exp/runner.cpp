#include "exp/runner.hpp"

#include <algorithm>
#include <utility>

namespace ibridge::exp {

Runner::Runner(int jobs) : jobs_(std::max(1, jobs)) {
  if (jobs_ > 1) {
    workers_.reserve(static_cast<std::size_t>(jobs_));
    for (int i = 0; i < jobs_; ++i) {
      workers_.emplace_back([this] { worker(); });
    }
  }
}

Runner::~Runner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Runner::run(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    // Serial reference path: no threads, no locks, exact program order.
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  batch_n_ = n;
  next_ = 0;
  completed_ = 0;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return completed_ == batch_n_; });
  fn_ = nullptr;
  batch_n_ = 0;
  if (error_ != nullptr) {
    std::exception_ptr err = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void Runner::worker() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [this] { return stop_ || (fn_ != nullptr && next_ < batch_n_); });
    if (stop_) return;
    while (fn_ != nullptr && next_ < batch_n_) {
      const int i = next_++;
      const std::function<void(int)>* fn = fn_;
      lock.unlock();
      std::exception_ptr err;
      try {
        (*fn)(i);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err != nullptr && error_ == nullptr) error_ = std::move(err);
      if (++completed_ == batch_n_) done_cv_.notify_all();
    }
  }
}

int Runner::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hw), 1, 16);
}

}  // namespace ibridge::exp
