#include "exp/runner.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "exp/gauge.hpp"

namespace ibridge::exp {

Runner::Runner(int jobs) : jobs_(std::max(1, jobs)) {
  if (jobs_ > 1) {
    workers_.reserve(static_cast<std::size_t>(jobs_));
    for (int i = 0; i < jobs_; ++i) {
      workers_.emplace_back([this] { worker(); });
    }
  }
}

Runner::~Runner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Runner::set_progress(std::function<void(const Progress&)> cb,
                          double interval_s) {
  progress_ = std::move(cb);
  progress_interval_ = std::max(interval_s, 0.01);
}

void Runner::run(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  const Stopwatch sw;
  if (workers_.empty() || n == 1) {
    // Serial reference path: no threads, no locks, exact program order.
    double next_emit = progress_interval_;
    for (int i = 0; i < n; ++i) {
      fn(i);
      if (progress_ && sw.seconds() >= next_emit) {
        progress_(Progress{i + 1, n, sw.seconds()});
        next_emit = sw.seconds() + progress_interval_;
      }
    }
    if (progress_) progress_(Progress{n, n, sw.seconds()});
    return;
  }

  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  batch_n_ = n;
  next_ = 0;
  completed_ = 0;
  work_cv_.notify_all();
  if (!progress_) {
    done_cv_.wait(lock, [this] { return completed_ == batch_n_; });
  } else {
    // Wake on the reporting interval, deliver a snapshot on the calling
    // thread (lock dropped), and loop until the batch drains.  The final
    // iteration reports completed == total.
    while (true) {
      done_cv_.wait_for(
          lock, std::chrono::duration<double>(progress_interval_),
          [this] { return completed_ == batch_n_; });
      const Progress p{completed_, batch_n_, sw.seconds()};
      lock.unlock();
      progress_(p);
      lock.lock();
      if (completed_ == batch_n_) break;
    }
  }
  fn_ = nullptr;
  batch_n_ = 0;
  if (error_ != nullptr) {
    std::exception_ptr err = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void Runner::worker() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [this] { return stop_ || (fn_ != nullptr && next_ < batch_n_); });
    if (stop_) return;
    while (fn_ != nullptr && next_ < batch_n_) {
      const int i = next_++;
      const std::function<void(int)>* fn = fn_;
      lock.unlock();
      std::exception_ptr err;
      try {
        (*fn)(i);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err != nullptr && error_ == nullptr) error_ = std::move(err);
      if (++completed_ == batch_n_) done_cv_.notify_all();
    }
  }
}

int Runner::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hw), 1, 16);
}

}  // namespace ibridge::exp
