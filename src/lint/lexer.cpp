// A lightweight C++ tokenizer for ibridge-lint.  It does not aim to be a
// full lexer: it distinguishes identifiers, numbers, string/char literals,
// comments, and punctuation, which is all the token-level rules need.
// Comments and #include directives are captured as structured side channels.
#include <cctype>
#include <cstddef>
#include <utility>

#include "lint/lint.hpp"

namespace ibridge::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string module_of(const std::string& rel) {
  const auto slash = rel.find('/');
  if (slash == std::string::npos) return "";
  const std::string first = rel.substr(0, slash);
  if (first != "src") return first;
  const auto second = rel.find('/', slash + 1);
  if (second == std::string::npos) return "";
  return rel.substr(slash + 1, second - slash - 1);
}

class Lexer {
 public:
  Lexer(std::string rel, const std::string& text) : text_(text) {
    out_.rel = std::move(rel);
    out_.module = module_of(out_.rel);
  }

  SourceFile run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
        continue;
      }
      if (starts_with("//")) {
        line_comment();
        continue;
      }
      if (starts_with("/*")) {
        block_comment();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        number();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  bool starts_with(const char* s) const {
    return text_.compare(pos_, __builtin_strlen(s), s) == 0;
  }

  void emit(TokKind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void line_comment() {
    const int start = line_;
    pos_ += 2;
    std::string body;
    while (pos_ < text_.size() && text_[pos_] != '\n') body += text_[pos_++];
    out_.comments.push_back(Comment{start, std::move(body)});
  }

  void block_comment() {
    const int start = line_;
    pos_ += 2;
    std::string body;
    while (pos_ < text_.size() && !starts_with("*/")) {
      if (text_[pos_] == '\n') ++line_;
      body += text_[pos_++];
    }
    pos_ += 2;  // past the close (or EOF; the overshoot is harmless)
    out_.comments.push_back(Comment{start, std::move(body)});
  }

  void string_literal() {
    const int start = line_;
    // Raw string: the token before the quote was the R prefix.
    if (!out_.tokens.empty() && out_.tokens.back().kind == TokKind::kIdent &&
        out_.tokens.back().line == line_ &&
        (out_.tokens.back().text == "R" || out_.tokens.back().text == "LR" ||
         out_.tokens.back().text == "u8R")) {
      raw_string_literal(start);
      return;
    }
    ++pos_;  // opening quote
    std::string body;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        body += text_[pos_++];
      }
      if (text_[pos_] == '\n') ++line_;
      body += text_[pos_++];
    }
    ++pos_;  // closing quote
    emit(TokKind::kString, std::move(body), start);
  }

  void raw_string_literal(int start) {
    out_.tokens.pop_back();  // the R prefix is part of the literal
    ++pos_;                  // opening quote
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(') delim += text_[pos_++];
    ++pos_;  // '('
    const std::string close = ")" + delim + "\"";
    std::string body;
    while (pos_ < text_.size() && !starts_with(close.c_str())) {
      if (text_[pos_] == '\n') ++line_;
      body += text_[pos_++];
    }
    pos_ += close.size();
    emit(TokKind::kString, std::move(body), start);
  }

  void char_literal() {
    const int start = line_;
    ++pos_;
    std::string body;
    while (pos_ < text_.size() && text_[pos_] != '\'') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) body += text_[pos_++];
      body += text_[pos_++];
    }
    ++pos_;
    emit(TokKind::kChar, std::move(body), start);
  }

  void identifier() {
    const int start = line_;
    std::string name;
    while (pos_ < text_.size() && ident_char(text_[pos_])) {
      name += text_[pos_++];
    }
    // `#include` is handled as a unit so the path (which is not a normal
    // token) never reaches the token stream.
    if (name == "include" && !out_.tokens.empty() &&
        out_.tokens.back().text == "#") {
      out_.tokens.pop_back();
      include_directive(start);
      return;
    }
    emit(TokKind::kIdent, std::move(name), start);
  }

  void include_directive(int line) {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return;
    const char open = text_[pos_];
    const char close = open == '<' ? '>' : '"';
    if (open != '<' && open != '"') return;  // computed include; ignore
    ++pos_;
    std::string path;
    while (pos_ < text_.size() && text_[pos_] != close &&
           text_[pos_] != '\n') {
      path += text_[pos_++];
    }
    if (pos_ < text_.size() && text_[pos_] == close) ++pos_;
    out_.includes.push_back(IncludeDirective{line, std::move(path), open == '"'});
  }

  void number() {
    const int start = line_;
    std::string body;
    // Good enough for 0x1f, 1'000'000, 1e9, 3.14f, 64LL, and friends.
    while (pos_ < text_.size() &&
           (ident_char(text_[pos_]) || text_[pos_] == '.' ||
            text_[pos_] == '\'')) {
      body += text_[pos_++];
    }
    emit(TokKind::kNumber, std::move(body), start);
  }

  void punct() {
    // "::" matters to the rules (std-qualification); everything else can be
    // single characters.
    if (starts_with("::")) {
      emit(TokKind::kPunct, "::", line_);
      pos_ += 2;
      return;
    }
    emit(TokKind::kPunct, std::string(1, text_[pos_]), line_);
    ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  SourceFile out_;
};

}  // namespace

SourceFile lex_source(std::string rel, const std::string& text) {
  return Lexer(std::move(rel), text).run();
}

}  // namespace ibridge::lint
