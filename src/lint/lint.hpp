// ibridge-lint: project-specific static analysis for the iBridge simulator.
//
// Three rule families, enforced at build time via `ctest -L lint`:
//
//   determinism  — the simulator must be a pure function of its seed, so
//                  wall-clock reads, ambient randomness, const_cast, and
//                  iteration over unordered containers are banned.
//   layering     — the module DAG (sim at the bottom, check at the top) is
//                  enforced from #include edges, plus an include-what-you-use
//                  pass for project headers.
//   unit safety  — the core/pvfs model headers must speak Bytes/Offset/
//                  ServerId (sim/units.hpp), not raw int64.
//
// Escape hatch: a suppression comment on the offending line or the line
// directly above, of the form
//
//     // NOLINT-style marker: `lint:` followed by a key and a reason
//     (e.g. units-ok, ordered-ok, include-ok — see kSuppressionKeys)
//
// The reason in parentheses is mandatory; a reasonless, unknown, or unused
// suppression is itself a diagnostic, so the suppression inventory stays
// audited.  (This header spells the marker obliquely so the linter does not
// read its own documentation as a suppression.)
#pragma once

#include <string>
#include <vector>

namespace ibridge::lint {

/// One finding: `file:line: [rule] message`.
struct Diagnostic {
  std::string file;  ///< '/'-separated path relative to the repo root
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

enum class TokKind { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;
};

struct Comment {
  int line = 0;       ///< line the comment starts on
  std::string text;   ///< body without the // or /* */ fences
};

struct IncludeDirective {
  int line = 0;
  std::string path;     ///< as written between the quotes/brackets
  bool quoted = false;  ///< "..." (project candidate) vs <...> (system)
};

/// A lexed translation unit: enough structure for token-level rules.
struct SourceFile {
  std::string rel;     ///< path relative to the repo root, e.g. "src/core/cache.hpp"
  std::string module;  ///< "sim", "core", ... for src/ files; "tests" etc. otherwise
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// Tokenizes C++ source text.  `rel` must be '/'-separated.
SourceFile lex_source(std::string rel, const std::string& text);

/// Runs every rule over a set of lexed files (the files are also the include
/// universe: an include is a "project include" iff "src/" + path names a file
/// in the set).  Returns diagnostics sorted by file and line, after applying
/// suppressions and auditing the suppressions themselves.
std::vector<Diagnostic> lint_corpus(const std::vector<SourceFile>& files);

/// Walks root/{src,tests,bench,tools,examples} for .hpp/.cpp files (skipping
/// lint fixtures) and lexes them into a corpus, sorted by rel path.
std::vector<SourceFile> load_tree(const std::string& root);

/// load_tree + lint_corpus.
std::vector<Diagnostic> lint_tree(const std::string& root);

/// The rule registry, for --list-rules and the fixture tests.
const std::vector<RuleInfo>& rules();

}  // namespace ibridge::lint
