#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/graph.hpp"

namespace ibridge::lint {
namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}
bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Method names so ubiquitous across std containers and utility types that
/// a member call to one of them is assumed external.  Resolving `out.clear()`
/// to every project `clear` would drown the call graph in false edges.
/// (Growth methods — push_back etc. — never get here: the indexer records
/// them as allocation sites instead of call sites.)
const std::set<std::string>& common_method_names() {
  static const std::set<std::string> kCommon = {
      "clear",       "size",     "empty",     "begin",    "end",
      "rbegin",      "rend",     "cbegin",    "cend",     "front",
      "back",        "data",     "at",        "find",     "count",
      "contains",    "erase",    "pop_back",  "pop_front","swap",
      "lower_bound", "upper_bound", "equal_range",        "get",
      "release",     "value",    "has_value", "value_or", "load",
      "store",       "exchange", "fetch_add", "fetch_sub","c_str",
      "substr",      "length",   "compare",   "top",      "pop",
      "str",         "good",     "fail",      "eof",      "is_open",
      "rdbuf",       "first",    "second",    "lock",     "unlock",
      "try_lock",    "wait",     "notify_one","notify_all"};
  return kCommon;
}

}  // namespace

std::vector<std::vector<std::string>> include_cycles(const Index& idx) {
  std::vector<std::vector<std::string>> out;
  std::set<std::string> reported;  // canonical "a -> b -> a" keys

  // Iterative DFS with an explicit color map; the include graph is small.
  enum class Color { kWhite, kGrey, kBlack };
  std::map<std::string, Color> color;
  std::vector<std::string> stack;

  // Recursive lambda via explicit worklist is awkward for path recovery;
  // plain recursion bounded by file count is fine here.
  struct Dfs {
    const Index& idx;
    std::map<std::string, Color>& color;
    std::vector<std::string>& stack;
    std::set<std::string>& reported;
    std::vector<std::vector<std::string>>& out;

    void visit(const std::string& file) {
      color[file] = Color::kGrey;
      stack.push_back(file);
      const auto it = idx.includes.find(file);
      if (it != idx.includes.end()) {
        for (const std::string& next : it->second) {
          const Color c =
              color.count(next) != 0 ? color[next] : Color::kWhite;
          if (c == Color::kGrey) {
            record(next);
          } else if (c == Color::kWhite) {
            visit(next);
          }
        }
      }
      stack.pop_back();
      color[file] = Color::kBlack;
    }

    void record(const std::string& entry) {
      const auto begin =
          std::find(stack.begin(), stack.end(), entry);
      std::vector<std::string> cycle(begin, stack.end());
      // Canonicalize: rotate so the smallest member leads.
      const auto min = std::min_element(cycle.begin(), cycle.end());
      std::rotate(cycle.begin(), min, cycle.end());
      std::string key;
      for (const std::string& f : cycle) key += f + " -> ";
      if (reported.insert(key).second) out.push_back(std::move(cycle));
    }
  };

  Dfs dfs{idx, color, stack, reported, out};
  for (const std::string& file : idx.files) {
    const Color c = color.count(file) != 0 ? color[file] : Color::kWhite;
    if (c == Color::kWhite) dfs.visit(file);
  }
  std::sort(out.begin(), out.end());
  return out;
}

CallGraph resolve_calls(const Index& idx) {
  std::map<std::string, std::vector<int>> by_name;
  for (std::size_t i = 0; i < idx.functions.size(); ++i) {
    by_name[idx.functions[i].name].push_back(static_cast<int>(i));
  }

  CallGraph g;
  g.targets.resize(idx.calls.size());
  g.edges.resize(idx.functions.size());

  for (std::size_t k = 0; k < idx.calls.size(); ++k) {
    const CallSite& c = idx.calls[k];
    if (c.caller < 0 ||
        static_cast<std::size_t>(c.caller) >= idx.functions.size()) {
      continue;
    }
    const auto named = by_name.find(c.callee);
    if (named == by_name.end()) continue;  // external or unresolvable
    std::vector<int>& out = g.targets[k];

    if (!c.qual.empty()) {
      if (c.qual == "std" || starts_with(c.qual, "std::")) continue;
      for (int i : named->second) {
        const FunctionSym& fn = idx.functions[i];
        if (fn.scope == c.qual || ends_with(fn.scope, "::" + c.qual)) {
          out.push_back(i);
        }
      }
    } else if (c.member) {
      if (common_method_names().count(c.callee) != 0) continue;
      for (int i : named->second) {
        if (idx.functions[i].in_class) out.push_back(i);
      }
    } else {
      // Plain call: prefer the enclosing class's own methods.
      const std::string& scope = idx.functions[c.caller].scope;
      for (int i : named->second) {
        if (!scope.empty() && idx.functions[i].scope == scope) {
          out.push_back(i);
        }
      }
      if (out.empty()) out = named->second;
    }
    // A call never targets its own definition for propagation purposes
    // (recursion adds nothing to may-allocate).
    out.erase(std::remove(out.begin(), out.end(), c.caller), out.end());
    for (int i : out) g.edges[c.caller].push_back(i);
  }

  for (auto& e : g.edges) {
    std::sort(e.begin(), e.end());
    e.erase(std::unique(e.begin(), e.end()), e.end());
  }
  return g;
}

std::vector<AllocFact> compute_alloc_facts(const Index& idx,
                                           const CallGraph& graph) {
  std::vector<AllocFact> facts(idx.functions.size());

  // Base: direct allocation sites (no-alloc functions excluded — their
  // bodies are enforced by the rule, so the annotation is trusted here).
  for (const AllocSite& a : idx.allocs) {
    if (a.caller < 0 ||
        static_cast<std::size_t>(a.caller) >= idx.functions.size()) {
      continue;
    }
    const FunctionSym& fn = idx.functions[a.caller];
    if (fn.no_alloc) continue;
    AllocFact& f = facts[a.caller];
    if (!f.may_allocate) {
      f.may_allocate = true;
      f.witness = "'" + a.what + "' at " + fn.file + ":" +
                  std::to_string(a.line);
    }
  }

  // Propagate caller <- callee until fixed.  Deterministic: call sites are
  // visited in index order every round.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t k = 0; k < idx.calls.size(); ++k) {
      const CallSite& c = idx.calls[k];
      if (c.caller < 0 ||
          static_cast<std::size_t>(c.caller) >= idx.functions.size()) {
        continue;
      }
      if (facts[c.caller].may_allocate) continue;
      if (idx.functions[c.caller].no_alloc) continue;  // checked by the rule
      for (int tgt : graph.targets[k]) {
        const FunctionSym& callee = idx.functions[tgt];
        if (callee.no_alloc || !facts[tgt].may_allocate) continue;
        AllocFact& f = facts[c.caller];
        f.may_allocate = true;
        f.witness = "calls " + callee.qualified() + " (" +
                    idx.functions[c.caller].file + ":" +
                    std::to_string(c.line) + "), which allocates: " +
                    facts[tgt].witness;
        if (f.witness.size() > 240) {
          f.witness = f.witness.substr(0, 237) + "...";
        }
        changed = true;
        break;
      }
    }
  }
  return facts;
}

}  // namespace ibridge::lint
