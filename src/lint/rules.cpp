// The ibridge-lint rule engine: determinism, layering, and unit-safety
// checks over the token streams produced by lexer.cpp, plus the suppression
// audit.  Every container in this file is ordered (std::map / std::set /
// sorted vectors) so the linter's own output is deterministic — the same
// property it enforces on the simulator.
#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/index.hpp"
#include "lint/lint.hpp"
#include "lint/semantic.hpp"

namespace ibridge::lint {
namespace {

// ---------------------------------------------------------------- tables ----

/// The module DAG: which src/ modules each module may #include.  A module may
/// always include itself.  Directories outside src/ (tests, bench, tools,
/// examples) are unrestricted consumers.
const std::map<std::string, std::set<std::string>>& layer_allowlist() {
  static const std::map<std::string, std::set<std::string>> kAllow = {
      {"sim", {}},
      {"stats", {"sim"}},
      {"net", {"sim"}},
      {"obs", {"sim", "stats"}},
      {"storage", {"sim", "stats", "obs"}},
      {"fsim", {"sim", "stats", "storage"}},
      {"core", {"sim", "stats", "obs", "storage", "fsim"}},
      {"pvfs", {"sim", "stats", "net", "obs", "storage", "fsim", "core"}},
      {"cluster",
       {"sim", "stats", "net", "obs", "storage", "fsim", "core", "pvfs"}},
      {"fault",
       {"sim", "stats", "net", "obs", "storage", "fsim", "core", "pvfs",
        "cluster"}},
      {"mpiio", {"sim", "stats", "net", "storage", "fsim", "core", "pvfs"}},
      {"plfs",
       {"sim", "stats", "net", "storage", "fsim", "core", "pvfs", "cluster",
        "mpiio"}},
      {"workloads",
       {"sim", "stats", "net", "storage", "fsim", "core", "pvfs", "cluster",
        "mpiio", "exp"}},
      {"check",
       {"sim", "stats", "net", "obs", "storage", "fsim", "core", "pvfs",
        "cluster", "fault", "mpiio", "plfs", "workloads"}},
      {"exp", {"sim", "stats", "obs"}},
      {"lint", {}},
  };
  return kAllow;
}

/// Suppression key -> the rule it silences.  Rules absent from this table
/// (rand, const-cast, layering) are hard bans with no escape hatch.
const std::map<std::string, std::string>& suppression_keys() {
  static const std::map<std::string, std::string> kKeys = {
      {"units-ok", "raw-unit-type"},
      {"unordered-iteration-ok", "unordered-iteration"},
      {"ordered-ok", "unordered-iteration"},
      {"include-ok", "include-what-you-use"},
      {"pointer-key-ok", "pointer-key"},
      {"rng-ok", "rng-construction"},
      {"wall-clock-ok", "wall-clock"},
      {"callback-ok", "sim-callback"},
      {"alloc-ok", "no-alloc"},
      {"obs-bounded-ok", "obs-bounded"},
  };
  return kKeys;
}

/// Marker keys owned by the semantic pass (index.hpp annotations).  They
/// are not suppressions of a same-line diagnostic, so the generic audit
/// below skips them; semantic.cpp audits attachment and reasons instead.
const std::set<std::string>& marker_keys() {
  static const std::set<std::string> kMarkers = {"no-alloc", "shard-owned",
                                                 "shared-ok"};
  return kMarkers;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}
bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string stem_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

// ---------------------------------------------------------- rule context ----

struct Context {
  std::set<std::string> project_files;  ///< every rel path in the corpus
  /// include path ("core/cache.hpp") -> names the header declares.
  std::map<std::string, std::set<std::string>> markers;
  /// Names declared anywhere in the corpus with an unordered container type
  /// (members live in headers, iteration in .cpp files, so this is global).
  std::set<std::string> unordered_names;
};

using Diags = std::vector<Diagnostic>;

void report(Diags& out, const SourceFile& f, int line, const char* rule,
            std::string message) {
  out.push_back(Diagnostic{f.rel, line, rule, std::move(message)});
}

bool is_ident(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent;
}
bool text_is(const std::vector<Token>& t, std::size_t i, const char* s) {
  return i < t.size() && t[i].text == s;
}

/// Index just past the '>' matching the '<' at `open`, or t.size().
std::size_t skip_angles(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "<") ++depth;
    if (t[i].text == ">" && --depth == 0) return i + 1;
  }
  return t.size();
}

// ----------------------------------------------------- determinism rules ----

void check_wall_clock(const SourceFile& f, Diags& out) {
  const auto& t = f.tokens;
  static const std::set<std::string> kBannedCalls = {
      "clock_gettime", "gettimeofday", "localtime", "gmtime", "ctime",
      "asctime"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& s = t[i].text;
    if (s == "system_clock") {
      report(out, f, t[i].line, "wall-clock",
             "std::chrono::system_clock reads the wall clock; the simulator "
             "must depend only on sim::Simulator::now()");
      continue;
    }
    if (kBannedCalls.count(s) != 0) {
      report(out, f, t[i].line, "wall-clock",
             "'" + s + "' reads ambient time; use simulated time instead");
      continue;
    }
    if (s == "time" && text_is(t, i + 1, "(")) {
      // Member access (sim.time()) and non-std qualification are fine; a
      // bare or std-qualified call is the C library wall clock.
      const bool qualified = i >= 1 && t[i - 1].text == "::";
      const bool member = i >= 1 && t[i - 1].text == ".";
      const bool std_qualified =
          qualified && i >= 2 && t[i - 2].text == "std";
      if ((qualified && !std_qualified) || member ||
          (i >= 1 && t[i - 1].kind == TokKind::kIdent)) {
        continue;
      }
      report(out, f, t[i].line, "wall-clock",
             "time() reads the wall clock; use simulated time instead");
    }
  }
}

void check_rand(const SourceFile& f, Diags& out) {
  const auto& t = f.tokens;
  static const std::set<std::string> kBanned = {"rand", "srand", "rand_r",
                                                "drand48", "srand48"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || kBanned.count(t[i].text) == 0) {
      continue;
    }
    if (!text_is(t, i + 1, "(")) continue;
    const bool member = i >= 1 && t[i - 1].text == ".";
    const bool qualified = i >= 1 && t[i - 1].text == "::";
    const bool std_qualified = qualified && i >= 2 && t[i - 2].text == "std";
    if (member || (qualified && !std_qualified)) continue;
    report(out, f, t[i].line, "rand",
           "'" + t[i].text +
               "' draws from hidden global state; use sim::Rng with an "
               "explicit seed");
  }
}

void check_rng_construction(const SourceFile& f, Diags& out) {
  if (f.rel == "src/sim/rng.hpp" || f.rel == "src/sim/rng.cpp") return;
  static const std::set<std::string> kEngines = {
      "mt19937",      "mt19937_64", "minstd_rand",           "minstd_rand0",
      "ranlux24",     "ranlux48",   "default_random_engine", "knuth_b"};
  for (const Token& tok : f.tokens) {
    if (tok.kind != TokKind::kIdent) continue;
    if (tok.text == "random_device") {
      report(out, f, tok.line, "rng-construction",
             "std::random_device is nondeterministic; seed sim::Rng "
             "explicitly instead");
    } else if (kEngines.count(tok.text) != 0) {
      report(out, f, tok.line, "rng-construction",
             "raw <random> engine '" + tok.text +
                 "' outside sim/rng.hpp; use sim::Rng so seeding stays "
                 "auditable");
    }
  }
}

void check_const_cast(const SourceFile& f, Diags& out) {
  for (const Token& tok : f.tokens) {
    if (tok.kind == TokKind::kIdent && tok.text == "const_cast") {
      report(out, f, tok.line, "const-cast",
             "const_cast subverts the const API surface; add a const "
             "overload instead");
    }
  }
}

/// Names declared in `f` with an unordered container type, including through
/// local `using X = std::unordered_map<...>` aliases.
std::set<std::string> collect_unordered_names(const SourceFile& f) {
  const auto& t = f.tokens;
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string> aliases;
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i)) continue;
    if (t[i].text == "using" && is_ident(t, i + 1) &&
        text_is(t, i + 2, "=")) {
      for (std::size_t j = i + 3; j < t.size() && t[j].text != ";"; ++j) {
        if (is_ident(t, j) && (kUnordered.count(t[j].text) != 0 ||
                               aliases.count(t[j].text) != 0)) {
          aliases.insert(t[i + 1].text);
          break;
        }
      }
      continue;
    }
    if (kUnordered.count(t[i].text) == 0 && aliases.count(t[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (text_is(t, j, "<")) j = skip_angles(t, j);
    while (text_is(t, j, "&") || text_is(t, j, "*") ||
           (is_ident(t, j) && t[j].text == "const")) {
      ++j;
    }
    if (is_ident(t, j)) names.insert(t[j].text);
  }
  return names;
}

void check_unordered_iteration(const SourceFile& f, const Context& ctx,
                               Diags& out) {
  const auto& t = f.tokens;
  if (ctx.unordered_names.empty()) return;

  // Range-for whose sequence expression is a plain access chain (no calls,
  // no arithmetic) ending in a name declared unordered somewhere in the
  // corpus.  Calls are skipped on purpose: `by_file_.at(fid)` may well yield
  // an ordered inner container, and flagging it would teach people to
  // suppress reflexively.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(is_ident(t, i) && t[i].text == "for" && text_is(t, i + 1, "("))) {
      continue;
    }
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = t.size();
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{") ++depth;
      if (t[j].text == ")" || t[j].text == "]" || t[j].text == "}") {
        if (--depth == 0) {
          close = j;
          break;
        }
      }
      if (t[j].text == ":" && depth == 1 && colon == 0) colon = j;
    }
    if (colon == 0) continue;  // a classic for loop
    bool plain_chain = true;
    std::string hit;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (t[j].kind == TokKind::kIdent) {
        if (ctx.unordered_names.count(t[j].text) != 0) hit = t[j].text;
        continue;
      }
      if (t[j].text == "." || t[j].text == "::" || t[j].text == "-" ||
          t[j].text == ">") {
        continue;  // member access (-> lexes as two puncts)
      }
      plain_chain = false;
      break;
    }
    if (plain_chain && !hit.empty()) {
      report(out, f, t[i].line, "unordered-iteration",
             "iterating '" + hit +
                 "' (an unordered container) makes results depend on hash "
                 "order; iterate a sorted copy or switch to std::map");
    }
  }
}

void check_pointer_key(const SourceFile& f, Diags& out) {
  const auto& t = f.tokens;
  static const std::set<std::string> kAssoc = {
      "map", "set", "multimap", "multiset", "unordered_map", "unordered_set"};
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(is_ident(t, i) && kAssoc.count(t[i].text) != 0 &&
          text_is(t, i + 1, "<"))) {
      continue;
    }
    int depth = 1;
    std::size_t last = 0;
    for (std::size_t j = i + 2; j < t.size(); ++j) {
      if (t[j].text == "<") ++depth;
      if (t[j].text == ">" && --depth == 0) break;
      if (t[j].text == "," && depth == 1) break;
      last = j;
    }
    if (last != 0 && t[last].text == "*") {
      report(out, f, t[i].line, "pointer-key",
             "pointer-keyed '" + t[i].text +
                 "' orders results by allocation address; key by a stable id "
                 "instead");
    }
  }
}

// -------------------------------------------------------- layering rules ----

void check_layering(const SourceFile& f, const Context& ctx, Diags& out) {
  const auto it = layer_allowlist().find(f.module);
  if (it == layer_allowlist().end()) return;  // tests/bench/tools/examples
  if (!starts_with(f.rel, "src/")) return;
  for (const IncludeDirective& inc : f.includes) {
    if (!inc.quoted) continue;
    if (ctx.project_files.count("src/" + inc.path) == 0) continue;
    const auto slash = inc.path.find('/');
    if (slash == std::string::npos) continue;
    const std::string target = inc.path.substr(0, slash);
    if (target == f.module || it->second.count(target) != 0) continue;
    report(out, f, inc.line, "layering",
           "module '" + f.module + "' may not include '" + inc.path +
               "': '" + target + "' is not among its allowed dependencies");
  }
}

/// The same path included twice in one file — always a merge or edit
/// leftover, so a hard ban with no suppression key.
void check_duplicate_include(const SourceFile& f, Diags& out) {
  std::map<std::string, int> first_line;
  for (const IncludeDirective& inc : f.includes) {
    const std::string key =
        (inc.quoted ? "\"" : "<") + inc.path + (inc.quoted ? "\"" : ">");
    const auto [it, inserted] = first_line.emplace(key, inc.line);
    if (!inserted) {
      report(out, f, inc.line, "duplicate-include",
             "duplicate #include " + key + " (first included on line " +
                 std::to_string(it->second) + ")");
    }
  }
}

void check_include_what_you_use(const SourceFile& f, const Context& ctx,
                                Diags& out) {
  std::set<std::string> used;
  for (const Token& tok : f.tokens) {
    if (tok.kind == TokKind::kIdent) used.insert(tok.text);
  }
  for (const IncludeDirective& inc : f.includes) {
    if (!inc.quoted) continue;
    const auto m = ctx.markers.find(inc.path);
    if (m == ctx.markers.end() || m->second.empty()) continue;
    if (stem_of(inc.path) == stem_of(f.rel)) continue;  // foo.cpp -> foo.hpp
    bool any = false;
    for (const std::string& name : m->second) {
      if (used.count(name) != 0) {
        any = true;
        break;
      }
    }
    if (!any) {
      report(out, f, inc.line, "include-what-you-use",
             "nothing declared in '" + inc.path +
                 "' is referenced here; drop the include");
    }
  }
}

/// Names a header declares, for the include-what-you-use pass.  Extraction
/// is deliberately generous (every callee-position identifier counts), so a
/// header is only flagged when the includer shares *nothing* with it.
std::set<std::string> extract_markers(const SourceFile& f) {
  std::set<std::string> out;
  const auto& t = f.tokens;
  static const std::set<std::string> kNoise = {
      "if",     "else",     "for",       "while",   "switch", "return",
      "sizeof", "alignof",  "decltype",  "case",    "do",     "catch",
      "new",    "delete",   "co_await",  "co_return", "co_yield",
      "throw",  "static_assert", "defined", "assert", "auto", "const",
      "constexpr", "static", "inline", "void", "bool", "int", "char",
      "double", "float", "operator", "requires", "noexcept", "explicit"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i)) continue;
    const std::string& s = t[i].text;
    if (s == "class" || s == "struct") {
      if (is_ident(t, i + 1)) out.insert(t[i + 1].text);
      continue;
    }
    if (s == "enum") {
      std::size_t j = i + 1;
      if (is_ident(t, j) && (t[j].text == "class" || t[j].text == "struct")) {
        ++j;
      }
      if (is_ident(t, j)) out.insert(t[j].text);
      continue;
    }
    if (s == "using") {
      if (is_ident(t, i + 1) && t[i + 1].text != "namespace" &&
          text_is(t, i + 2, "=")) {
        out.insert(t[i + 1].text);
      }
      continue;
    }
    if (s == "define" && i >= 1 && t[i - 1].text == "#") {
      if (is_ident(t, i + 1)) out.insert(t[i + 1].text);
      continue;
    }
    if (s == "namespace") {
      ++i;  // a namespace name is not a usable marker
      continue;
    }
    if (kNoise.count(s) != 0) continue;
    if (text_is(t, i + 1, "(")) {
      out.insert(s);  // function declaration or call
    } else if ((text_is(t, i + 1, "=") || text_is(t, i + 1, "{")) && i >= 1 &&
               (t[i - 1].kind == TokKind::kIdent || t[i - 1].text == ">" ||
                t[i - 1].text == "&" || t[i - 1].text == "*")) {
      out.insert(s);  // constant / variable declaration
    }
  }
  return out;
}

// ----------------------------------------------------- unit-safety rules ----

/// The typed core: headers whose public surface must speak Bytes/Offset/
/// ServerId.  config.hpp is the declared raw-integer boundary (tunables come
/// from flag parsing), and client.hpp/metadata.hpp form the raw byte API the
/// workloads drive.
bool unit_rule_applies(const std::string& rel) {
  if (rel == "src/pvfs/layout.hpp" || rel == "src/pvfs/server.hpp") {
    return true;
  }
  if (starts_with(rel, "src/stats/") && ends_with(rel, ".hpp")) return true;
  return starts_with(rel, "src/core/") && ends_with(rel, ".hpp") &&
         rel != "src/core/config.hpp";
}

void check_raw_unit_type(const SourceFile& f, Diags& out) {
  if (!unit_rule_applies(f.rel)) return;
  static const std::vector<std::string> kSuspicious = {
      "off", "len", "byte", "size", "capacity", "quota", "server", "lbn"};
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(is_ident(t, i) &&
          (t[i].text == "int64_t" || t[i].text == "uint64_t"))) {
      continue;
    }
    if (!is_ident(t, i + 1)) continue;  // template arg, cast, unnamed param
    const std::string& name = t[i + 1].text;
    for (const std::string& hint : kSuspicious) {
      if (name.find(hint) != std::string::npos) {
        report(out, f, t[i + 1].line, "raw-unit-type",
               "'" + name +
                   "' looks like a byte quantity but is raw int64; use "
                   "sim::Bytes / sim::Offset / sim::ServerId");
        break;
      }
    }
  }
}

// ------------------------------------------------------ event callbacks ----

/// `std::function<void()>` outside src/sim/: the simulator's callback slot
/// is sim::InlineEvent (48-byte small-buffer, no per-event allocation), and
/// std::function<void()> in model code almost always ends up scheduled on
/// the simulator, re-introducing a heap round-trip per event plus a move
/// through std::function's 16-byte SBO.  src/sim/ itself is exempt — it
/// defines InlineEvent and legitimately uses std::function for non-event
/// signatures.  Suppress with `// lint: callback-ok (reason)` for callables
/// that never reach Simulator::schedule.
void check_sim_callback(const SourceFile& f, Diags& out) {
  if (starts_with(f.rel, "src/sim/")) return;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (is_ident(t, i) && t[i].text == "function" && text_is(t, i + 1, "<") &&
        text_is(t, i + 2, "void") && text_is(t, i + 3, "(") &&
        text_is(t, i + 4, ")")) {
      report(out, f, t[i].line, "sim-callback",
             "std::function<void()> heap-allocates captured state per event; "
             "use sim::InlineEvent (sim/inline_event.hpp)");
    }
  }
}

// ------------------------------------------------------- fault injection ----

/// SsdModel::set_fault_hook outside src/fault/ (and src/storage/, which
/// declares it): every injected latency must flow through the seeded fault
/// engine, or the "same schedule ⇒ same run" guarantee dies.  A hard ban —
/// there is no legitimate ad-hoc installation site.
void check_ssd_fault_hook(const SourceFile& f, Diags& out) {
  if (starts_with(f.rel, "src/storage/") || starts_with(f.rel, "src/fault/")) {
    return;
  }
  for (const Token& tok : f.tokens) {
    if (tok.kind == TokKind::kIdent && tok.text == "set_fault_hook") {
      report(out, f, tok.line, "ssd-fault-hook",
             "installing an SSD fault hook outside src/fault/ bypasses the "
             "deterministic fault engine; declare the fault in a "
             "FaultSchedule instead");
    }
  }
}


// -------------------------------------------------------- bounded metrics ----

/// stats::Histogram keeps every sample — O(n) memory that grows for the
/// whole run.  src/stats and src/obs own it (the sketch/reservoir backends
/// and the registry's HistogramCell wrap it there); everywhere else in src/
/// a distribution must go through MetricsRegistry::histogram(), whose
/// per-metric policy can bound memory.  `// lint: obs-bounded-ok (reason)`
/// escapes the rare deliberate exact accumulator.
void check_obs_bounded(const SourceFile& f, Diags& out) {
  if (!starts_with(f.rel, "src/")) return;
  if (starts_with(f.rel, "src/stats/") || starts_with(f.rel, "src/obs/")) {
    return;
  }
  for (const Token& tok : f.tokens) {
    if (tok.kind == TokKind::kIdent && tok.text == "Histogram") {
      report(out, f, tok.line, "obs-bounded",
             "stats::Histogram stores every sample (unbounded); use "
             "MetricsRegistry::histogram() so a bounded policy (sketch/"
             "reservoir) can apply, or annotate obs-bounded-ok");
    }
  }
}

// ----------------------------------------------------------- suppression ----

struct Suppression {
  int line = 0;
  std::string key;
  std::string reason;
  std::string rule;  ///< empty when the key is unknown
  bool used = false;
};

std::vector<Suppression> parse_suppressions(const SourceFile& f) {
  std::vector<Suppression> out;
  for (const Comment& c : f.comments) {
    const auto start = c.text.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (c.text.compare(start, 5, "lint:") != 0) continue;
    std::size_t p = start + 5;
    while (p < c.text.size() && c.text[p] == ' ') ++p;
    std::string key;
    while (p < c.text.size() &&
           (std::isalnum(static_cast<unsigned char>(c.text[p])) != 0 ||
            c.text[p] == '-')) {
      key += c.text[p++];
    }
    if (marker_keys().count(key) != 0) continue;  // semantic.cpp audits these
    std::string reason;
    const auto open = c.text.find('(', p);
    const auto close = c.text.rfind(')');
    if (open != std::string::npos && close != std::string::npos &&
        close > open) {
      reason = c.text.substr(open + 1, close - open - 1);
    }
    Suppression s;
    s.line = c.line;
    s.key = std::move(key);
    s.reason = std::move(reason);
    const auto it = suppression_keys().find(s.key);
    if (it != suppression_keys().end()) s.rule = it->second;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"wall-clock", "no reads of ambient time; sim time only"},
      {"rand", "no hidden-state C randomness; sim::Rng only"},
      {"rng-construction", "no raw <random> engines outside sim/rng"},
      {"const-cast", "no const_cast; add const overloads"},
      {"unordered-iteration", "no iteration over unordered containers"},
      {"pointer-key", "no pointer-keyed associative containers"},
      {"layering", "module #includes must follow the DAG"},
      {"duplicate-include", "no path #included twice in one file"},
      {"include-what-you-use", "project includes must be used"},
      {"raw-unit-type", "typed-core headers use Bytes/Offset/ServerId"},
      {"sim-callback", "event callbacks use sim::InlineEvent, not std::function"},
      {"ssd-fault-hook", "SSD fault hooks are installed only by src/fault/"},
      {"obs-bounded", "exact stats::Histogram lives only in src/stats + src/obs"},
      {"lint-annotation", "suppressions need a known key and a reason"},
      {"shared-global", "no unannotated mutable globals or class statics"},
      {"static-local", "no unannotated static/thread_local function state"},
      {"shard-ownership", "shard-owned state names its owner; only it writes"},
      {"no-alloc", "no allocation inside `no-alloc` annotated functions"},
      {"include-cycle", "the project include graph stays acyclic"},
  };
  return kRules;
}

std::vector<Diagnostic> lint_corpus(const std::vector<SourceFile>& files) {
  Context ctx;
  for (const SourceFile& f : files) {
    ctx.project_files.insert(f.rel);
    if (starts_with(f.rel, "src/") && ends_with(f.rel, ".hpp")) {
      ctx.markers[f.rel.substr(4)] = extract_markers(f);
    }
    const auto names = collect_unordered_names(f);
    ctx.unordered_names.insert(names.begin(), names.end());
  }

  // Per-file token rules first, pooled by file so the cross-file semantic
  // diagnostics can join them before suppression filtering.
  std::map<std::string, Diags> raw_by_file;
  for (const SourceFile& f : files) {
    Diags& raw = raw_by_file[f.rel];
    check_wall_clock(f, raw);
    check_rand(f, raw);
    check_rng_construction(f, raw);
    check_const_cast(f, raw);
    check_unordered_iteration(f, ctx, raw);
    check_pointer_key(f, raw);
    check_layering(f, ctx, raw);
    check_duplicate_include(f, raw);
    check_include_what_you_use(f, ctx, raw);
    check_raw_unit_type(f, raw);
    check_sim_callback(f, raw);
    check_ssd_fault_hook(f, raw);
    check_obs_bounded(f, raw);
  }

  // The semantic pass: symbol index + include/call graphs, shared-state and
  // no-alloc analysis.  Its findings are suppressed (alloc-ok) and audited
  // through the same per-file machinery as everything else.
  {
    const Index idx = build_index(files);
    Diags semantic;
    run_semantic_pass(files, idx, semantic);
    for (Diagnostic& d : semantic) {
      raw_by_file[d.file].push_back(std::move(d));
    }
  }

  Diags all;
  for (const SourceFile& f : files) {
    Diags& raw = raw_by_file[f.rel];
    auto sups = parse_suppressions(f);
    for (Diagnostic& d : raw) {
      bool suppressed = false;
      for (Suppression& s : sups) {
        if (s.rule == d.rule && (s.line == d.line || s.line + 1 == d.line)) {
          s.used = true;
          suppressed = true;
        }
      }
      if (!suppressed) all.push_back(std::move(d));
    }
    for (const Suppression& s : sups) {
      if (s.rule.empty()) {
        report(all, f, s.line, "lint-annotation",
               "unknown suppression key '" + s.key + "'");
      } else if (s.reason.find_first_not_of(" \t") == std::string::npos) {
        report(all, f, s.line, "lint-annotation",
               "suppression '" + s.key +
                   "' is missing its mandatory (reason)");
      } else if (!s.used) {
        report(all, f, s.line, "lint-annotation",
               "suppression '" + s.key +
                   "' matches no diagnostic on this or the next line; "
                   "delete it");
      }
    }
  }

  std::sort(all.begin(), all.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return all;
}

std::vector<SourceFile> load_tree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  for (const char* top : {"src", "tests", "bench", "tools", "examples"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (rel.find("lint_fixtures") != std::string::npos) continue;
      std::ifstream in(entry.path());
      std::ostringstream text;
      text << in.rdbuf();
      files.push_back(lex_source(rel, text.str()));
    }
  }
  // Directory iteration order is filesystem-dependent; the corpus is not.
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  return files;
}

std::vector<Diagnostic> lint_tree(const std::string& root) {
  return lint_corpus(load_tree(root));
}

}  // namespace ibridge::lint
