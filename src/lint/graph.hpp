// Graphs over the symbol index: the project #include graph (cycle
// detection) and the resolved call graph with the may-allocate fixpoint
// that powers the static no-alloc zones.
#pragma once

#include <string>
#include <vector>

#include "lint/index.hpp"

namespace ibridge::lint {

/// Cycles in the project include graph.  Each cycle is reported once, as
/// the file list along the cycle starting from its lexicographically
/// smallest member (so output is deterministic and duplicates collapse).
std::vector<std::vector<std::string>> include_cycles(const Index& idx);

/// The resolved call graph.  `targets[k]` lists the indices (into
/// Index::functions) a call site `idx.calls[k]` may reach; empty when the
/// callee is external (std::, libc, container methods) or unresolvable.
/// `edges[i]` is the union of targets over function i's call sites.
struct CallGraph {
  std::vector<std::vector<int>> targets;  ///< parallel to idx.calls
  std::vector<std::vector<int>> edges;    ///< parallel to idx.functions
};

/// Resolves call sites against the function table.  Name-based, with three
/// shapes:
///   * qualified (`Foo::bar(...)`)  — functions whose scope is or ends in
///     the qualifier; `std::...` is skipped outright;
///   * member (`x.f(...)`, `p->f(...)`) — any project *method* of that
///     name, except a skip-list of ubiquitous container/utility method
///     names (size, clear, find, ...) that would otherwise alias;
///   * plain (`f(...)`) — methods of the caller's own class first, then
///     any project function of that name.
/// Over-approximate by construction: a false edge costs an audited
/// `alloc-ok` escape, a missed edge would cost silent unsoundness.
CallGraph resolve_calls(const Index& idx);

/// Why a function may allocate.
struct AllocFact {
  bool may_allocate = false;
  std::string witness;  ///< e.g. "new at src/x.cpp:42" or a call chain
};

/// Fixpoint over the call graph: a function may allocate if its body has a
/// direct allocation site, or if it calls a may-allocate function.
/// Functions annotated `// lint: no-alloc` are treated as non-allocating
/// when propagating — their own bodies are enforced separately by the
/// no-alloc rule, so the annotation is a checked promise, not a blind one.
std::vector<AllocFact> compute_alloc_facts(const Index& idx,
                                           const CallGraph& graph);

}  // namespace ibridge::lint
