// The ibridge-lint symbol index: a lightweight, cross-file view of the
// project built on top of the token streams from lexer.cpp.
//
// The indexer is not a C++ front end.  It is a scope-tracking scanner that
// recovers exactly the structure the semantic rules need:
//
//   * namespaces, classes and structs (qualified names);
//   * function definitions with their body token ranges — free functions,
//     methods (inline or out-of-line `Class::method` definitions),
//     constructors/destructors and operators;
//   * shared mutable state: namespace-scope variables, static data members,
//     function-local `static`s and `thread_local`s, with their const-ness
//     and any `// lint: shard-owned(<module>)` / `// lint: shared-ok
//     (reason)` ownership annotations;
//   * call sites (callee name + access shape, for graph.{hpp,cpp} to
//     resolve) and allocation sites (`new`, `operator new`, make_unique/
//     make_shared, malloc-family, and container-growth member calls) inside
//     each function body;
//   * the resolved project #include edges.
//
// The index serializes to a deterministic line-based text format
// ("ibridge-lint-index-v1", see serialize_index) that the tool writes via
// --index-cache and CI uploads as an artifact; parse_index round-trips it.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace ibridge::lint {

/// One parsed `lint:` comment: key plus the parenthesized payload (a reason
/// for suppressions, the owner module for shard-owned, empty for no-alloc).
struct Annotation {
  int line = 0;
  std::string key;
  std::string payload;
};

/// All `lint:` comments in a file, in line order.
std::vector<Annotation> parse_annotations(const SourceFile& f);

enum class VarKind {
  kGlobal,        ///< namespace-scope variable
  kClassStatic,   ///< static data member
  kFunctionStatic,///< function-local static
  kThreadLocal,   ///< thread_local at any scope
};

/// A piece of potentially shared state.
struct VarSym {
  std::string name;    ///< unqualified
  std::string scope;   ///< enclosing scope, e.g. "ibridge::sim::frame_pool"
  std::string file;
  int line = 0;
  VarKind kind = VarKind::kGlobal;
  bool is_const = false;  ///< const/constexpr appeared in the decl-specifiers
  /// Ownership annotations (resolved from the comment on the declaration
  /// line or the line directly above):
  bool owner_declared = false;  ///< a shard-owned(...) annotation is present
  std::string owner;            ///< its module payload (may be empty)
  bool shared_ok = false;       ///< a shared-ok (reason) annotation is present

  std::string qualified() const {
    return scope.empty() ? name : scope + "::" + name;
  }
};

/// A function definition (one with a body in this corpus).
struct FunctionSym {
  std::string name;   ///< unqualified: "coverage_into", "operator()", "~Foo"
  std::string scope;  ///< "ibridge::core::MappingTable"
  std::string file;
  int line = 0;             ///< line of the name token
  std::size_t body_begin = 0;  ///< token index of the '{' in its file
  std::size_t body_end = 0;    ///< token index one past the matching '}'
  bool in_class = false;    ///< defined at class scope or via Class:: qual
  bool no_alloc = false;    ///< carries a `// lint: no-alloc` annotation

  std::string qualified() const {
    return scope.empty() ? name : scope + "::" + name;
  }
};

/// A call site inside a function body.  `callee` is the unqualified name;
/// resolution against the function table happens in graph.cpp.
struct CallSite {
  int caller = -1;     ///< index into Index::functions
  std::string callee;
  std::string qual;    ///< explicit qualifier ("std", "MappingTable"), if any
  bool member = false; ///< receiver access: `x.f(...)` / `p->f(...)`
  int line = 0;
};

enum class AllocKind {
  kNew,          ///< non-placement `new`
  kOperatorNew,  ///< explicit `operator new(...)` call
  kMakeSmart,    ///< make_unique / make_shared
  kCAlloc,       ///< malloc / calloc / realloc / strdup
  kGrowth,       ///< container growth member call (push_back, resize, ...)
};

/// A direct allocation site inside a function body.
struct AllocSite {
  int caller = -1;
  AllocKind kind = AllocKind::kNew;
  std::string what;  ///< the offending token ("new", "push_back", ...)
  int line = 0;
};

struct Index {
  std::vector<std::string> files;                ///< sorted rel paths
  /// module of each file, parallel to `files`.
  std::vector<std::string> modules;
  /// resolved project include edges: includer rel -> set of included rels.
  std::map<std::string, std::set<std::string>> includes;
  std::vector<std::string> classes;  ///< qualified class/struct names, sorted
  std::vector<FunctionSym> functions;
  std::vector<VarSym> vars;
  std::vector<CallSite> calls;
  std::vector<AllocSite> allocs;
};

/// Builds the index over a lexed corpus.  Deterministic: files are processed
/// in the given order (lint_tree / load_tree sort them), and every list is
/// emitted in scan order.
Index build_index(const std::vector<SourceFile>& files);

/// The index as "ibridge-lint-index-v1" text: one record per line, sorted
/// where the source order is not already canonical.  Reasons/payloads are
/// not serialized (they live in the source and the suppression audit), so
/// serialize(parse(serialize(x))) == serialize(x) holds byte-for-byte.
std::string serialize_index(const Index& index);

/// Parses serialize_index output.  Returns nullopt on a malformed or
/// wrong-version cache.
std::optional<Index> parse_index(const std::string& text);

}  // namespace ibridge::lint
