// The symbol indexer: a scope-tracking scanner over the lexer's token
// streams.  See index.hpp for what it recovers and what it deliberately
// does not attempt (overload sets, templates, receiver types).
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/index.hpp"

namespace ibridge::lint {
namespace {

bool is_ident(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent;
}
bool text_is(const std::vector<Token>& t, std::size_t i, const char* s) {
  return i < t.size() && t[i].text == s;
}

/// Index just past the '>' matching the '<' at `open`, or t.size().
std::size_t skip_angles(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "<") ++depth;
    if (t[i].text == ">" && --depth == 0) return i + 1;
    if (t[i].text == ";" || t[i].text == "{") return i;  // not a template
  }
  return t.size();
}

/// Index just past the closer matching the opener at `open` ('(' / '[' /
/// '{'), or t.size() on imbalance.  Bracket kinds are pooled, so mismatched
/// nesting still terminates.
std::size_t skip_balanced(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "(" || t[i].text == "[" || t[i].text == "{") ++depth;
    if (t[i].text == ")" || t[i].text == "]" || t[i].text == "}") {
      if (--depth == 0) return i + 1;
    }
  }
  return t.size();
}

/// Index just past the ';' ending the statement at `i`, skipping balanced
/// parens/brackets/braces (initializer lists, lambdas).
std::size_t skip_statement(const std::vector<Token>& t, std::size_t i) {
  while (i < t.size()) {
    const std::string& s = t[i].text;
    if (s == ";") return i + 1;
    if (s == "(" || s == "[" || s == "{") {
      i = skip_balanced(t, i);
      continue;
    }
    if (s == ")" || s == "]" || s == "}") return i;  // enclosing scope ends
    ++i;
  }
  return i;
}

/// Decl-specifier keywords that never name a declared entity.
const std::set<std::string>& spec_keywords() {
  static const std::set<std::string> kSpecs = {
      "const",    "constexpr", "constinit", "consteval", "static",
      "inline",   "extern",    "mutable",   "volatile",  "register",
      "thread_local", "typename", "unsigned", "signed",  "long",
      "short",    "int",       "char",      "bool",      "float",
      "double",   "void",      "auto",      "virtual",   "explicit",
      "friend",   "typedef",   "struct",    "class",     "enum",
      "union",    "final",     "override",  "noexcept",  "co_return"};
  return kSpecs;
}

/// Identifiers that look like calls but are control flow / operators.
const std::set<std::string>& non_call_keywords() {
  static const std::set<std::string> kNonCall = {
      "if",        "for",      "while",     "switch",   "return",
      "sizeof",    "alignof",  "alignas",   "decltype", "catch",
      "co_await",  "co_return","co_yield",  "throw",    "assert",
      "static_assert", "noexcept", "requires", "defined", "new",
      "delete",    "typeid",   "__builtin_strlen"};
  return kNonCall;
}

/// Fundamental-type keywords: they count toward "this statement declares
/// something" but never name the declared entity.
const std::set<std::string>& type_keywords() {
  static const std::set<std::string> kTypes = {
      "unsigned", "signed", "long",   "short", "int",  "char",
      "bool",     "float",  "double", "auto",  "void", "wchar_t"};
  return kTypes;
}

/// Container-growth member calls the no-alloc analysis treats as potential
/// allocations.
const std::set<std::string>& growth_names() {
  static const std::set<std::string> kGrowth = {
      "push_back", "emplace_back", "push_front", "emplace_front",
      "resize",    "reserve",      "insert",     "emplace",
      "append",    "assign"};
  return kGrowth;
}

/// The lexer strips quotes, so a string literal whose content is ")" or "="
/// would otherwise satisfy punct comparisons and derail bracket matching.
/// Scanning runs over a copy with literal texts replaced by placeholders.
std::vector<Token> neutralize_literals(const std::vector<Token>& in) {
  std::vector<Token> out = in;
  for (Token& t : out) {
    if (t.kind == TokKind::kString) t.text = "<str>";
    if (t.kind == TokKind::kChar) t.text = "<chr>";
  }
  return out;
}

class FileIndexer {
 public:
  FileIndexer(const SourceFile& f, Index& out)
      : f_(f), t_(neutralize_literals(f.tokens)), out_(out) {}

  void run() {
    scope_body(0, t_.size(), /*in_class=*/false, top_scope());
    attach_annotations();
  }

 private:
  std::string top_scope() const { return ""; }

  std::string join_scope(const std::string& outer,
                         const std::string& name) const {
    if (outer.empty()) return name;
    if (name.empty()) return outer;
    return outer + "::" + name;
  }

  /// Skips a preprocessor directive: every token on the '#' token's line.
  /// (Multi-line macro definitions with backslash continuations are rare in
  /// this codebase and simply fall back to normal scanning.)
  std::size_t skip_directive(std::size_t i) const {
    const int line = t_[i].line;
    while (i < t_.size() && t_[i].line == line) ++i;
    return i;
  }

  // ------------------------------------------------- namespace / class ----

  /// Parses declarations in [i, end) at namespace or class scope.  Returns
  /// the index just past the matching '}' (or `end`).
  std::size_t scope_body(std::size_t i, std::size_t end, bool in_class,
                         const std::string& scope) {
    while (i < end && i < t_.size()) {
      const Token& tok = t_[i];
      if (tok.text == "}") return i + 1;
      if (tok.text == "#") {
        i = skip_directive(i);
        continue;
      }
      if (tok.text == ";" || tok.text == ":") {
        ++i;
        continue;
      }
      if (tok.kind != TokKind::kIdent) {
        // '~' starts a destructor; anything else (stray punct, attribute
        // brackets) is skipped a token at a time.
        if (tok.text == "[") {
          i = skip_balanced(t_, i);
          continue;
        }
        if (tok.text != "~") {
          ++i;
          continue;
        }
      }
      const std::string& s = tok.text;
      if (s == "namespace") {
        i = parse_namespace(i, scope);
        continue;
      }
      if (s == "template") {
        if (text_is(t_, i + 1, "<")) {
          i = skip_angles(t_, i + 1);
        } else {
          ++i;
        }
        continue;
      }
      if (s == "using" || s == "typedef" || s == "friend" ||
          s == "static_assert") {
        i = skip_statement(t_, i);
        continue;
      }
      if (s == "public" || s == "private" || s == "protected") {
        i += text_is(t_, i + 1, ":") ? 2 : 1;
        continue;
      }
      if (s == "enum") {
        i = parse_enum(i);
        continue;
      }
      if ((s == "class" || s == "struct" || s == "union") &&
          !looks_like_type_prefix(i)) {
        i = parse_class(i, scope);
        continue;
      }
      if (s == "extern" && i + 1 < t_.size() &&
          t_[i + 1].kind == TokKind::kString) {
        // extern "C" { ... } reopens the same scope.
        if (text_is(t_, i + 2, "{")) {
          const std::size_t close = skip_balanced(t_, i + 2);
          scope_body(i + 3, close, in_class, scope);
          i = close;
        } else {
          i = skip_statement(t_, i);
        }
        continue;
      }
      i = parse_declaration(i, end, in_class, scope);
    }
    return i;
  }

  /// `class X;` forward decls and elaborated types (`struct Foo f;`) are
  /// handled by parse_declaration; a class *definition* has a '{' before
  /// any ';' or '('.  This checks for the definition shape.
  bool looks_like_type_prefix(std::size_t i) const {
    for (std::size_t j = i + 1; j < t_.size(); ++j) {
      const std::string& s = t_[j].text;
      if (s == "{") return false;  // definition: handle via parse_class
      if (s == ";" || s == "(" || s == "=") return true;
      if (s == ")") return true;  // e.g. a template argument
    }
    return true;
  }

  std::size_t parse_namespace(std::size_t i, const std::string& scope) {
    std::size_t j = i + 1;
    std::string name;
    while (j < t_.size() && t_[j].text != "{" && t_[j].text != ";" &&
           t_[j].text != "=") {
      if (t_[j].kind == TokKind::kIdent) {
        name = name.empty() ? t_[j].text : name + "::" + t_[j].text;
      }
      ++j;
    }
    if (j >= t_.size() || t_[j].text != "{") return skip_statement(t_, i);
    if (name.empty()) name = "(anon)";
    const std::size_t close = skip_balanced(t_, j);
    scope_body(j + 1, close, /*in_class=*/false, join_scope(scope, name));
    return close;
  }

  std::size_t parse_enum(std::size_t i) {
    std::size_t j = i + 1;
    while (j < t_.size() && t_[j].text != "{" && t_[j].text != ";") ++j;
    if (j >= t_.size() || t_[j].text == ";") return j + 1;
    return skip_statement(t_, skip_balanced(t_, j));
  }

  std::size_t parse_class(std::size_t i, const std::string& scope) {
    std::size_t j = i + 1;
    std::string name;
    while (j < t_.size() && t_[j].text != "{" && t_[j].text != ";") {
      if (t_[j].text == ":") break;  // base clause: name is complete
      if (t_[j].text == "<") {       // template-id in a specialization
        j = skip_angles(t_, j);
        continue;
      }
      if (t_[j].kind == TokKind::kIdent && t_[j].text != "final" &&
          t_[j].text != "alignas") {
        name = t_[j].text;
      }
      if (t_[j].text == "(") {  // alignas(...) or attribute
        j = skip_balanced(t_, j);
        continue;
      }
      ++j;
    }
    while (j < t_.size() && t_[j].text != "{" && t_[j].text != ";") {
      if (t_[j].text == "(" || t_[j].text == "[") {
        j = skip_balanced(t_, j);
        continue;
      }
      if (t_[j].text == "<") {
        j = skip_angles(t_, j);
        continue;
      }
      ++j;
    }
    if (j >= t_.size() || t_[j].text == ";") return j + 1;
    if (name.empty()) name = "(anon)";
    out_.classes.push_back(join_scope(join_scope(file_scope(), scope), name));
    const std::size_t close = skip_balanced(t_, j);
    scope_body(j + 1, close, /*in_class=*/true, join_scope(scope, name));
    // `} name;` — an immediate variable of the anonymous/just-defined type.
    return skip_trailing_declarator(close);
  }

  std::size_t skip_trailing_declarator(std::size_t i) const {
    std::size_t j = i;
    while (j < t_.size() && t_[j].text != ";" && t_[j].text != "}" &&
           t_[j].text != "{") {
      ++j;
    }
    return j < t_.size() && t_[j].text == ";" ? j + 1 : i;
  }

  // ------------------------------------------------------ declarations ----

  /// One declaration at namespace/class scope: a function definition (body
  /// scanned), a function declaration (skipped), or a variable (recorded
  /// when it is shared state).  Returns the index past the declaration.
  std::size_t parse_declaration(std::size_t i, std::size_t end, bool in_class,
                                const std::string& scope) {
    bool saw_const = false;
    bool saw_static = false;
    bool saw_thread_local = false;
    bool saw_extern = false;
    std::string last_ident;
    int last_ident_line = 0;
    int ident_count = 0;

    std::size_t j = i;
    if (t_[j].text == "~") ++j;  // leading destructor tilde
    for (; j < end && j < t_.size(); ++j) {
      const Token& tok = t_[j];
      const std::string& s = tok.text;
      if (s == "#") {
        j = skip_directive(j) - 1;
        continue;
      }
      if (tok.kind == TokKind::kIdent) {
        if (s == "const" || s == "constexpr" || s == "constinit") {
          saw_const = true;
          continue;
        }
        if (s == "static") {
          saw_static = true;
          continue;
        }
        if (s == "thread_local") {
          saw_thread_local = true;
          continue;
        }
        if (s == "extern") {
          saw_extern = true;
          continue;
        }
        if (s == "alignas" || s == "decltype" || s == "__attribute__") {
          if (text_is(t_, j + 1, "(")) j = skip_balanced(t_, j + 1) - 1;
          continue;
        }
        if (s == "operator") {
          return parse_function(j, operator_name(j), tok.line, in_class,
                                scope, /*explicit_qual=*/current_qual(j));
        }
        if (text_is(t_, j + 1, "(") && non_call_keywords().count(s) == 0 &&
            spec_keywords().count(s) == 0) {
          // Candidate function: name '(' params ')' ... '{' | ';' | '='
          std::string name = s;
          if (j >= 1 && t_[j - 1].text == "~") name = "~" + name;
          return parse_function(j + 1, name, tok.line, in_class, scope,
                                current_qual(j));
        }
        if (text_is(t_, j + 1, "<")) {
          // Type template-id (std::vector<...>); its arguments never name
          // the declared entity.
          const std::size_t after = skip_angles(t_, j + 1);
          if (after > j + 1 && after <= end) {
            j = after - 1;
            continue;
          }
        }
        if (spec_keywords().count(s) == 0) {
          last_ident = s;
          last_ident_line = tok.line;
          ++ident_count;
        } else if (type_keywords().count(s) != 0) {
          ++ident_count;  // `static int x;` still declares something
        }
        continue;
      }
      if (s == "[") {  // array extent or attribute: not a declared name
        j = skip_balanced(t_, j) - 1;
        continue;
      }
      if (s == "=" || s == "{") {
        // Variable with an initializer.
        if (!last_ident.empty() && !saw_extern) {
          record_var(last_ident, last_ident_line, in_class, scope, saw_const,
                     saw_static, saw_thread_local, /*at_function_scope=*/false);
        }
        return skip_statement(t_, j);
      }
      if (s == ";") {
        // `Foo x;` — require type + name so macro invocations and stray
        // idents are not misread as variables.
        if (ident_count >= 2 && !last_ident.empty() && !saw_extern) {
          record_var(last_ident, last_ident_line, in_class, scope, saw_const,
                     saw_static, saw_thread_local, /*at_function_scope=*/false);
        }
        return j + 1;
      }
      if (s == "}") return j;  // enclosing scope closed under us
    }
    return j;
  }

  /// The explicit qualifier chain directly before the name token at `j`:
  /// `A::B::name` -> "A::B" (walks back over ident-"::" pairs).
  std::string current_qual(std::size_t j) const {
    std::size_t k = j;
    if (k >= 1 && t_[k - 1].text == "~") --k;
    std::vector<std::string> parts;
    while (k >= 2 && t_[k - 1].text == "::" && is_ident(t_, k - 2)) {
      parts.push_back(t_[k - 2].text);
      k -= 2;
    }
    std::string qual;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      qual = qual.empty() ? *it : qual + "::" + *it;
    }
    return qual;
  }

  /// Name of an operator function whose `operator` keyword is at `j`.
  /// Returns e.g. "operator()", "operator==", "operator_bool",
  /// "operator_new".  Leaves the cursor handling to parse_function (the
  /// param '(' is found by scanning).
  std::string operator_name(std::size_t j) const {
    std::size_t k = j + 1;
    if (is_ident(t_, k)) {  // conversion / operator new / operator delete
      std::string name = "operator_" + t_[k].text;
      ++k;
      while (k < t_.size() &&
             (is_ident(t_, k) || t_[k].text == "*" || t_[k].text == "&")) {
        if (t_[k].kind == TokKind::kIdent) name += "_" + t_[k].text;
        ++k;
      }
      return name;
    }
    std::string name = "operator";
    if (text_is(t_, k, "(") && text_is(t_, k + 1, ")")) return "operator()";
    if (text_is(t_, k, "[") && text_is(t_, k + 1, "]")) return "operator[]";
    while (k < t_.size() && t_[k].kind == TokKind::kPunct &&
           t_[k].text != "(") {
      name += t_[k].text;
      ++k;
    }
    return name;
  }

  /// Parses a candidate function from the token after its name.  `i` points
  /// at (or before) the parameter-list '('.  Either records a definition
  /// and scans its body, or skips a mere declaration.
  std::size_t parse_function(std::size_t i, const std::string& name,
                             int name_line, bool in_class,
                             const std::string& scope,
                             const std::string& explicit_qual) {
    std::size_t j = i;
    while (j < t_.size() && t_[j].text != "(") {
      if (t_[j].text == ";" || t_[j].text == "{" || t_[j].text == "}") {
        return j;  // malformed candidate; bail without consuming the brace
      }
      ++j;
    }
    if (j >= t_.size()) return j;
    j = skip_balanced(t_, j);  // past the parameter list

    // Trailing: const, noexcept(...), override, ->, trailing types,
    // requires-clauses, ctor init lists — up to '{', ';', '=' or ','.
    while (j < t_.size()) {
      const std::string& s = t_[j].text;
      if (s == "{") {
        // Definition.
        FunctionSym fn;
        fn.name = name;
        fn.scope = join_scope(join_scope(file_scope(), scope), explicit_qual);
        fn.file = f_.rel;
        fn.line = name_line;
        fn.body_begin = j;
        const std::size_t close = skip_balanced(t_, j);
        fn.body_end = close;
        fn.in_class = in_class || !explicit_qual.empty();
        const int fid = static_cast<int>(out_.functions.size());
        out_.functions.push_back(std::move(fn));
        scan_function_body(j + 1, close - 1, fid,
                           join_scope(join_scope(file_scope(), scope),
                                      explicit_qual.empty()
                                          ? name
                                          : explicit_qual + "::" + name));
        return close;
      }
      if (s == ";") return j + 1;        // declaration only
      if (s == "=") return skip_statement(t_, j);  // = default / delete / 0
      if (s == ",") return skip_statement(t_, j);  // odd multi-declarator
      if (s == ":") {
        // Constructor initializer list: members with (...) or {...}
        // initializers, then the body '{'.
        ++j;
        while (j < t_.size()) {
          while (j < t_.size() && t_[j].text != "(" && t_[j].text != "{" &&
                 t_[j].text != ";") {
            if (t_[j].text == "<") {
              j = skip_angles(t_, j);
              continue;
            }
            ++j;
          }
          if (j >= t_.size() || t_[j].text == ";") return j + 1;
          if (t_[j].text == "{" &&
              (t_[j - 1].text == ")" || t_[j - 1].text == "}")) {
            break;  // this '{' is the body
          }
          const bool was_paren = t_[j].text == "(";
          j = skip_balanced(t_, j);
          if (text_is(t_, j, ",")) {
            ++j;
            continue;
          }
          if (!was_paren && !text_is(t_, j, "{")) continue;
          if (text_is(t_, j, "{")) break;
          // after `member(init)` with no comma the next '{' is the body
        }
        continue;  // loop re-examines t_[j] (now the body '{' or beyond)
      }
      if (s == "(") {  // noexcept(...), requires(...)
        j = skip_balanced(t_, j);
        continue;
      }
      if (s == "[") {
        j = skip_balanced(t_, j);
        continue;
      }
      if (s == "<") {
        j = skip_angles(t_, j);
        continue;
      }
      if (s == "}") return j;  // scope closed: was a declaration after all
      ++j;
    }
    return j;
  }

  // --------------------------------------------------- function bodies ----

  /// Scans [i, end) — the inside of a function body — for call sites,
  /// allocation sites, and static-local declarations.  Nested blocks and
  /// lambdas are attributed to the enclosing function.
  void scan_function_body(std::size_t i, std::size_t end, int fid,
                          const std::string& fn_scope) {
    for (std::size_t j = i; j < end && j < t_.size(); ++j) {
      const Token& tok = t_[j];
      if (tok.text == "#") {
        j = skip_directive(j) - 1;
        continue;
      }
      if (tok.kind != TokKind::kIdent) continue;
      const std::string& s = tok.text;

      // static / thread_local locals at statement position.
      if ((s == "static" || s == "thread_local") && at_statement_start(j)) {
        j = scan_static_local(j, end, fn_scope, s == "thread_local") - 1;
        continue;
      }

      // Allocation sites.
      if (s == "new") {
        const bool op_new = j >= 1 && t_[j - 1].text == "operator";
        if (op_new) {
          record_alloc(fid, AllocKind::kOperatorNew, "operator-new", tok.line);
        } else if (!text_is(t_, j + 1, "(")) {
          record_alloc(fid, AllocKind::kNew, "new", tok.line);
        }
        continue;
      }
      if (s == "make_unique" || s == "make_shared") {
        record_alloc(fid, AllocKind::kMakeSmart, s, tok.line);
        continue;
      }
      if ((s == "malloc" || s == "calloc" || s == "realloc" ||
           s == "strdup") &&
          text_is(t_, j + 1, "(")) {
        record_alloc(fid, AllocKind::kCAlloc, s, tok.line);
        continue;
      }

      // Call sites: ident '(' (also ident '<...>' '(' for explicit template
      // arguments), excluding keywords and declarations-like contexts.
      if (non_call_keywords().count(s) != 0 ||
          spec_keywords().count(s) != 0) {
        continue;
      }
      std::size_t open = j + 1;
      if (text_is(t_, open, "<")) {
        const std::size_t after = skip_angles(t_, open);
        if (!text_is(t_, after, "(")) continue;
        open = after;
      }
      if (!text_is(t_, open, "(")) continue;

      CallSite c;
      c.caller = fid;
      c.callee = s;
      c.line = tok.line;
      if (j >= 1 &&
          (t_[j - 1].text == "." ||
           (t_[j - 1].text == ">" && j >= 2 && t_[j - 2].text == "-"))) {
        c.member = true;
      } else if (j >= 2 && t_[j - 1].text == "::" && is_ident(t_, j - 2)) {
        c.qual = current_qual(j);
      }
      const bool growth =
          c.member && growth_names().count(s) != 0;
      if (growth) {
        record_alloc(fid, AllocKind::kGrowth, s, tok.line);
      } else {
        out_.calls.push_back(std::move(c));
      }
    }
  }

  bool at_statement_start(std::size_t j) const {
    if (j == 0) return true;
    const std::string& p = t_[j - 1].text;
    return p == ";" || p == "{" || p == "}" || p == ":" || p == ")";
  }

  /// `static T name ...;` inside a function body.  Returns the index past
  /// the statement.  Mutable (non-const) locals are recorded.
  std::size_t scan_static_local(std::size_t i, std::size_t end,
                                const std::string& fn_scope,
                                bool thread_local_kw) {
    bool saw_const = false;
    bool tl = thread_local_kw;
    std::string last_ident;
    int last_line = 0;
    int ident_count = 0;
    for (std::size_t j = i + 1; j < end && j < t_.size(); ++j) {
      const std::string& s = t_[j].text;
      if (t_[j].kind == TokKind::kIdent) {
        if (s == "const" || s == "constexpr" || s == "constinit") {
          saw_const = true;
          continue;
        }
        if (s == "thread_local") {
          tl = true;
          continue;
        }
        if (s == "static") continue;
        if (text_is(t_, j + 1, "<")) {
          const std::size_t after = skip_angles(t_, j + 1);
          if (after > j + 1) {
            j = after - 1;
            continue;
          }
        }
        if (spec_keywords().count(s) == 0) {
          last_ident = s;
          last_line = t_[j].line;
          ++ident_count;
        } else if (type_keywords().count(s) != 0) {
          ++ident_count;
        }
        continue;
      }
      if (s == "[") {
        j = skip_balanced(t_, j) - 1;
        continue;
      }
      if (s == "=" || s == "{" || s == "(" || s == ";") {
        if (!last_ident.empty() && ident_count >= 2) {
          record_var(last_ident, last_line, /*in_class=*/false, fn_scope,
                     saw_const, /*saw_static=*/!tl, tl,
                     /*at_function_scope=*/true);
        }
        return s == ";" ? j + 1 : skip_statement(t_, j);
      }
    }
    return end;
  }

  // ----------------------------------------------------------- records ----

  std::string file_scope() const { return ""; }

  void record_var(const std::string& name, int line, bool in_class,
                  const std::string& scope, bool is_const, bool is_static,
                  bool is_tl, bool at_function_scope) {
    // Plain (non-static) data members are instance state, never shared.
    if (in_class && !is_static && !is_tl) return;
    VarSym v;
    v.name = name;
    v.scope = scope;
    v.file = f_.rel;
    v.line = line;
    v.is_const = is_const;
    if (is_tl) {
      v.kind = VarKind::kThreadLocal;
    } else if (at_function_scope) {
      v.kind = VarKind::kFunctionStatic;
    } else if (in_class) {
      v.kind = VarKind::kClassStatic;
    } else {
      v.kind = VarKind::kGlobal;
    }
    out_.vars.push_back(std::move(v));
  }

  void record_alloc(int fid, AllocKind kind, std::string what, int line) {
    AllocSite a;
    a.caller = fid;
    a.kind = kind;
    a.what = std::move(what);
    a.line = line;
    out_.allocs.push_back(std::move(a));
  }

  /// Resolves `// lint: no-alloc` / `shard-owned` / `shared-ok` comments
  /// against the symbols recorded for this file.  The annotation applies to
  /// a declaration on its own line or the line directly below.
  void attach_annotations() {
    const auto anns = parse_annotations(f_);
    for (const Annotation& a : anns) {
      if (a.key == "no-alloc") {
        for (FunctionSym& fn : out_.functions) {
          if (fn.file == f_.rel &&
              (fn.line == a.line || fn.line == a.line + 1)) {
            fn.no_alloc = true;
          }
        }
      } else if (a.key == "shard-owned" || a.key == "shared-ok") {
        for (VarSym& v : out_.vars) {
          if (v.file == f_.rel && (v.line == a.line || v.line == a.line + 1)) {
            if (a.key == "shard-owned") {
              v.owner_declared = true;
              v.owner = a.payload;
            } else {
              v.shared_ok = true;
            }
          }
        }
      }
    }
  }

  const SourceFile& f_;
  const std::vector<Token> t_;
  Index& out_;
};

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

const char* var_kind_name(VarKind k) {
  switch (k) {
    case VarKind::kGlobal: return "global";
    case VarKind::kClassStatic: return "class-static";
    case VarKind::kFunctionStatic: return "static-local";
    case VarKind::kThreadLocal: return "thread-local";
  }
  return "global";
}

std::optional<VarKind> var_kind_of(const std::string& s) {
  if (s == "global") return VarKind::kGlobal;
  if (s == "class-static") return VarKind::kClassStatic;
  if (s == "static-local") return VarKind::kFunctionStatic;
  if (s == "thread-local") return VarKind::kThreadLocal;
  return std::nullopt;
}

const char* alloc_kind_name(AllocKind k) {
  switch (k) {
    case AllocKind::kNew: return "new";
    case AllocKind::kOperatorNew: return "operator-new";
    case AllocKind::kMakeSmart: return "make-smart";
    case AllocKind::kCAlloc: return "c-alloc";
    case AllocKind::kGrowth: return "growth";
  }
  return "new";
}

std::optional<AllocKind> alloc_kind_of(const std::string& s) {
  if (s == "new") return AllocKind::kNew;
  if (s == "operator-new") return AllocKind::kOperatorNew;
  if (s == "make-smart") return AllocKind::kMakeSmart;
  if (s == "c-alloc") return AllocKind::kCAlloc;
  if (s == "growth") return AllocKind::kGrowth;
  return std::nullopt;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string w;
  while (in >> w) out.push_back(w);
  return out;
}

}  // namespace

std::vector<Annotation> parse_annotations(const SourceFile& f) {
  std::vector<Annotation> out;
  for (const Comment& c : f.comments) {
    const auto start = c.text.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (c.text.compare(start, 5, "lint:") != 0) continue;
    std::size_t p = start + 5;
    while (p < c.text.size() && c.text[p] == ' ') ++p;
    Annotation a;
    a.line = c.line;
    while (p < c.text.size() &&
           (std::isalnum(static_cast<unsigned char>(c.text[p])) != 0 ||
            c.text[p] == '-')) {
      a.key += c.text[p++];
    }
    const auto open = c.text.find('(', p);
    const auto close = c.text.rfind(')');
    if (open != std::string::npos && close != std::string::npos &&
        close > open) {
      a.payload = trim(c.text.substr(open + 1, close - open - 1));
    }
    out.push_back(std::move(a));
  }
  return out;
}

Index build_index(const std::vector<SourceFile>& files) {
  Index idx;
  std::set<std::string> project;
  for (const SourceFile& f : files) project.insert(f.rel);
  for (std::size_t i = 0; i < files.size(); ++i) {
    const SourceFile& f = files[i];
    idx.files.push_back(f.rel);
    idx.modules.push_back(f.module);
    for (const IncludeDirective& inc : f.includes) {
      if (!inc.quoted) continue;
      const std::string target = "src/" + inc.path;
      if (project.count(target) != 0) idx.includes[f.rel].insert(target);
    }
    FileIndexer(f, idx).run();
  }
  std::sort(idx.classes.begin(), idx.classes.end());
  return idx;
}

std::string serialize_index(const Index& index) {
  std::ostringstream out;
  out << "ibridge-lint-index-v1\n";
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    out << "file " << index.files[i] << " "
        << (i < index.modules.size() && !index.modules[i].empty()
                ? index.modules[i]
                : "-")
        << "\n";
  }
  for (const auto& [from, tos] : index.includes) {
    for (const std::string& to : tos) {
      out << "include " << from << " " << to << "\n";
    }
  }
  for (const std::string& c : index.classes) out << "class " << c << "\n";
  for (const FunctionSym& fn : index.functions) {
    out << "func " << (fn.qualified().empty() ? "-" : fn.qualified()) << " "
        << fn.file << ":" << fn.line << " body=" << fn.body_begin << ","
        << fn.body_end << (fn.in_class ? " method" : " free")
        << (fn.no_alloc ? " no-alloc" : "") << "\n";
  }
  for (const VarSym& v : index.vars) {
    out << "var " << v.qualified() << " " << v.file << ":" << v.line
        << " kind=" << var_kind_name(v.kind) << (v.is_const ? " const" : "");
    if (v.owner_declared) {
      out << " owner=" << (v.owner.empty() ? "-" : v.owner);
    }
    if (v.shared_ok) out << " shared-ok";
    out << "\n";
  }
  for (const CallSite& c : index.calls) {
    out << "call " << c.caller << " " << c.callee << " "
        << (c.qual.empty() ? "-" : c.qual) << (c.member ? " member" : " plain")
        << " :" << c.line << "\n";
  }
  for (const AllocSite& a : index.allocs) {
    out << "alloc " << a.caller << " " << alloc_kind_name(a.kind) << " "
        << a.what << " :" << a.line << "\n";
  }
  return out.str();
}

std::optional<Index> parse_index(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "ibridge-lint-index-v1") {
    return std::nullopt;
  }
  Index idx;
  auto split_loc = [](const std::string& s, std::string& file, int& ln) {
    const auto colon = s.rfind(':');
    if (colon == std::string::npos) return false;
    file = s.substr(0, colon);
    ln = std::atoi(s.c_str() + colon + 1);
    return true;
  };
  auto split_qual = [](const std::string& q, std::string& scope,
                       std::string& name) {
    // Split at the last "::" that is not inside an operator name.
    const auto pos = q.rfind("::");
    if (pos == std::string::npos || q.compare(0, 8, "operator") == 0) {
      scope = "";
      name = q;
      return;
    }
    scope = q.substr(0, pos);
    name = q.substr(pos + 2);
    // "A::operator::" style names cannot occur: operator tokens are
    // concatenated without "::".
  };
  while (std::getline(in, line)) {
    const auto w = split_ws(line);
    if (w.empty()) continue;
    if (w[0] == "file" && w.size() >= 3) {
      idx.files.push_back(w[1]);
      idx.modules.push_back(w[2] == "-" ? "" : w[2]);
    } else if (w[0] == "include" && w.size() >= 3) {
      idx.includes[w[1]].insert(w[2]);
    } else if (w[0] == "class" && w.size() >= 2) {
      idx.classes.push_back(w[1]);
    } else if (w[0] == "func" && w.size() >= 5) {
      FunctionSym fn;
      split_qual(w[1] == "-" ? "" : w[1], fn.scope, fn.name);
      if (!split_loc(w[2], fn.file, fn.line)) return std::nullopt;
      if (w[3].compare(0, 5, "body=") != 0) return std::nullopt;
      const std::string range = w[3].substr(5);
      const auto comma = range.find(',');
      if (comma == std::string::npos) return std::nullopt;
      fn.body_begin = static_cast<std::size_t>(
          std::atoll(range.substr(0, comma).c_str()));
      fn.body_end =
          static_cast<std::size_t>(std::atoll(range.c_str() + comma + 1));
      fn.in_class = w[4] == "method";
      for (std::size_t k = 5; k < w.size(); ++k) {
        if (w[k] == "no-alloc") fn.no_alloc = true;
      }
      idx.functions.push_back(std::move(fn));
    } else if (w[0] == "var" && w.size() >= 4) {
      VarSym v;
      split_qual(w[1], v.scope, v.name);
      if (!split_loc(w[2], v.file, v.line)) return std::nullopt;
      if (w[3].compare(0, 5, "kind=") != 0) return std::nullopt;
      const auto k = var_kind_of(w[3].substr(5));
      if (!k) return std::nullopt;
      v.kind = *k;
      for (std::size_t p = 4; p < w.size(); ++p) {
        if (w[p] == "const") v.is_const = true;
        if (w[p] == "shared-ok") v.shared_ok = true;
        if (w[p].compare(0, 6, "owner=") == 0) {
          v.owner_declared = true;
          v.owner = w[p].substr(6) == "-" ? "" : w[p].substr(6);
        }
      }
      idx.vars.push_back(std::move(v));
    } else if (w[0] == "call" && w.size() >= 5) {
      CallSite c;
      c.caller = std::atoi(w[1].c_str());
      c.callee = w[2];
      c.qual = w[3] == "-" ? "" : w[3];
      c.member = w[4] == "member";
      if (w.size() >= 6 && w[5][0] == ':') c.line = std::atoi(w[5].c_str() + 1);
      idx.calls.push_back(std::move(c));
    } else if (w[0] == "alloc" && w.size() >= 4) {
      AllocSite a;
      a.caller = std::atoi(w[1].c_str());
      const auto k = alloc_kind_of(w[2]);
      if (!k) return std::nullopt;
      a.kind = *k;
      a.what = w[3];
      if (w.size() >= 5 && w[4][0] == ':') a.line = std::atoi(w[4].c_str() + 1);
      idx.allocs.push_back(std::move(a));
    } else {
      return std::nullopt;
    }
  }
  return idx;
}

}  // namespace ibridge::lint
