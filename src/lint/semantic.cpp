// The shared-state / shard-safety analyzer and the static no-alloc zones.
// Everything here is cross-file: the per-file token rules live in rules.cpp.
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/graph.hpp"
#include "lint/semantic.hpp"

namespace ibridge::lint {
namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

void report(std::vector<Diagnostic>& out, const std::string& file, int line,
            const char* rule, std::string message) {
  out.push_back(Diagnostic{file, line, rule, std::move(message)});
}

bool blank(const std::string& s) {
  return s.find_first_not_of(" \t") == std::string::npos;
}

/// shared-global / static-local: every piece of mutable state that outlives
/// a single shard must carry an ownership verdict.  Scoped to src/ — tests,
/// bench and tools are per-process driver code, not shard candidates.
void check_shared_state(const Index& idx, std::vector<Diagnostic>& out) {
  for (const VarSym& v : idx.vars) {
    if (v.is_const) continue;
    if (!starts_with(v.file, "src/")) continue;
    if (v.owner_declared || v.shared_ok) continue;
    const bool local_like =
        v.kind == VarKind::kFunctionStatic || v.kind == VarKind::kThreadLocal;
    if (local_like) {
      const char* what = v.kind == VarKind::kThreadLocal
                             ? "thread_local"
                             : "function-local static";
      report(out, v.file, v.line, "static-local",
             std::string(what) + " '" + v.name +
                 "' is hidden mutable state the parallel sim core cannot "
                 "shard; hoist it into an owning object, or annotate "
                 "shared-ok (reason) / shard-owned(<module>)");
    } else {
      const char* what = v.kind == VarKind::kClassStatic
                             ? "static data member"
                             : "namespace-scope variable";
      report(out, v.file, v.line, "shared-global",
             std::string(what) + " '" + v.qualified() +
                 "' is mutable shared state; make it const, move it into an "
                 "owning object, or annotate shard-owned(<module>) / "
                 "shared-ok (reason)");
    }
  }
}

/// True when the identifier at `i` is written: plain or compound assignment,
/// or pre/post increment/decrement.  `++`/`--`/`+=` lex as single-char
/// puncts, so the shapes are checked token-by-token.
bool is_write(const std::vector<Token>& t, std::size_t i) {
  // Kind-checked: a string literal whose content is "=" must not look like
  // an operator (the lexer strips quotes).
  const auto text = [&](std::size_t j, const char* s) {
    return j < t.size() && t[j].kind == TokKind::kPunct && t[j].text == s;
  };
  // name = ...   (but not == comparison, and not <=, >=, != at the left)
  if (text(i + 1, "=") && !text(i + 2, "=")) {
    if (i >= 1 && (text(i - 1, "=") || text(i - 1, "!") || text(i - 1, "<") ||
                   text(i - 1, ">"))) {
      return false;
    }
    return true;
  }
  // name += ... and friends.  `a - b = ...` is not valid C++, so this shape
  // is always a compound assignment; `x + y == z` fails the != "=" check.
  for (const char* op : {"+", "-", "*", "/", "%", "&", "|", "^"}) {
    if (text(i + 1, op) && text(i + 2, "=") && !text(i + 3, "=")) return true;
  }
  // ++name / name++ (and --): `++` lexes as two '+' puncts.
  if (i >= 2 && text(i - 1, "+") && text(i - 2, "+")) return true;
  if (i >= 2 && text(i - 1, "-") && text(i - 2, "-")) return true;
  if (text(i + 1, "+") && text(i + 2, "+")) return true;
  if (text(i + 1, "-") && text(i + 2, "-")) return true;
  return false;
}

/// Member-function names that mutate the receiver.  A call to one of these
/// through a shard-owned symbol is a write for ownership purposes: foreign
/// modules must route such mutations through the owner (for the parallel
/// core that means a ShardGroup::post into the owner's mailbox, merged at
/// the window barrier) instead of reaching across shards directly.
bool is_mutating_method(const std::string& name) {
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "pop_back", "push", "pop",  "emplace",
      "insert",    "erase",        "clear",    "resize", "assign", "reset",
      "store",     "exchange",     "fetch_add", "fetch_sub", "swap"};
  return kMutators.count(name) != 0;
}

/// shard-ownership: shard-owned(<module>) declares a single writer module.
/// An empty owner is an error (the missing-ownership fixture); flagged as
/// foreign writes are both direct stores (assignment, ++/--) and mutating
/// method calls (`owned.push_back(...)`, `owned->reset(...)`) to the
/// variable's name from any other src/ module.  Matching is by name —
/// over-approximate, with shared-ok as the documented escape.
void check_shard_ownership(const std::vector<SourceFile>& files,
                           const Index& idx, std::vector<Diagnostic>& out) {
  struct Owned {
    const VarSym* var;
  };
  std::map<std::string, std::vector<Owned>> owned_by_name;
  for (const VarSym& v : idx.vars) {
    if (!v.owner_declared) continue;
    if (blank(v.owner)) {
      report(out, v.file, v.line, "shard-ownership",
             "shard-owned annotation on '" + v.qualified() +
                 "' is missing its (<module>) owner");
      continue;
    }
    owned_by_name[v.name].push_back(Owned{&v});
  }
  if (owned_by_name.empty()) return;

  for (const SourceFile& f : files) {
    if (!starts_with(f.rel, "src/")) continue;
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
      const Token& tok = f.tokens[i];
      if (tok.kind != TokKind::kIdent) continue;
      const auto it = owned_by_name.find(tok.text);
      if (it == owned_by_name.end()) continue;

      // Direct store, or a mutating method call on the symbol:
      //   name . method (        name - > method (
      const auto t = [&](std::size_t k, const char* s) {
        return k < f.tokens.size() && f.tokens[k].kind == TokKind::kPunct &&
               f.tokens[k].text == s;
      };
      const auto meth = [&](std::size_t k) {
        return k + 1 < f.tokens.size() &&
               f.tokens[k].kind == TokKind::kIdent &&
               is_mutating_method(f.tokens[k].text) && t(k + 1, "(");
      };
      const bool mutating_call =
          (t(i + 1, ".") && meth(i + 2)) ||
          (t(i + 1, "-") && t(i + 2, ">") && meth(i + 3));
      if (!is_write(f.tokens, i) && !mutating_call) continue;

      for (const Owned& o : it->second) {
        if (f.module == o.var->owner) continue;
        // The declaration's own initializer is not a foreign write.
        if (f.rel == o.var->file && tok.line == o.var->line) continue;
        report(out, f.rel, tok.line, "shard-ownership",
               std::string(mutating_call ? "mutating call on '"
                                         : "write to '") +
                   o.var->qualified() + "' (shard-owned(" + o.var->owner +
                   ")) from module '" + f.module +
                   "'; route the mutation through the owning module (post "
                   "into its shard mailbox)");
      }
    }
  }
}

/// no-alloc: inside an annotated function, every direct allocation site and
/// every call that may reach an allocation is an error.  alloc-ok (reason)
/// on the offending line is the audited escape (it flows through the same
/// suppression machinery as every other rule).
void check_no_alloc(const Index& idx, const CallGraph& graph,
                    const std::vector<AllocFact>& facts,
                    std::vector<Diagnostic>& out) {
  for (const AllocSite& a : idx.allocs) {
    if (a.caller < 0 ||
        static_cast<std::size_t>(a.caller) >= idx.functions.size()) {
      continue;
    }
    const FunctionSym& fn = idx.functions[a.caller];
    if (!fn.no_alloc) continue;
    const char* verb = a.kind == AllocKind::kGrowth
                           ? "container growth via"
                           : "allocation via";
    report(out, fn.file, a.line, "no-alloc",
           std::string(verb) + " '" + a.what + "' inside no-alloc function '" +
               fn.qualified() +
               "'; use a pooled lease, or annotate alloc-ok (reason)");
  }
  for (std::size_t k = 0; k < idx.calls.size(); ++k) {
    const CallSite& c = idx.calls[k];
    if (c.caller < 0 ||
        static_cast<std::size_t>(c.caller) >= idx.functions.size()) {
      continue;
    }
    const FunctionSym& fn = idx.functions[c.caller];
    if (!fn.no_alloc) continue;
    for (int tgt : graph.targets[k]) {
      const FunctionSym& callee = idx.functions[tgt];
      if (callee.no_alloc || !facts[tgt].may_allocate) continue;
      report(out, fn.file, c.line, "no-alloc",
             "no-alloc function '" + fn.qualified() + "' calls '" +
                 callee.qualified() +
                 "', which may allocate (" + facts[tgt].witness +
                 "); annotate the callee no-alloc or this call alloc-ok "
                 "(reason)");
      break;  // one finding per call site is enough
    }
  }
}

/// include-cycle: the diagnostic lands on the #include line in the cycle's
/// first file that points at the next file along the cycle.
void check_include_cycles(const std::vector<SourceFile>& files,
                          const Index& idx, std::vector<Diagnostic>& out) {
  const auto cycles = include_cycles(idx);
  if (cycles.empty()) return;
  std::map<std::string, const SourceFile*> by_rel;
  for (const SourceFile& f : files) by_rel[f.rel] = &f;
  for (const auto& cycle : cycles) {
    const std::string& head = cycle.front();
    const std::string& next = cycle.size() > 1 ? cycle[1] : cycle.front();
    int line = 1;
    const auto it = by_rel.find(head);
    if (it != by_rel.end()) {
      for (const IncludeDirective& inc : it->second->includes) {
        if (inc.quoted && "src/" + inc.path == next) {
          line = inc.line;
          break;
        }
      }
    }
    std::string path;
    for (const std::string& f : cycle) path += f + " -> ";
    path += head;
    report(out, head, line, "include-cycle",
           "project include cycle: " + path);
  }
}

/// lint-annotation audit for the marker keys the semantic pass owns.  The
/// generic suppression audit in rules.cpp skips these three keys; here we
/// verify each marker actually attaches to a symbol, and that shared-ok
/// carries its mandatory reason.
void check_markers(const std::vector<SourceFile>& files, const Index& idx,
                   std::vector<Diagnostic>& out) {
  for (const SourceFile& f : files) {
    for (const Annotation& a : parse_annotations(f)) {
      if (a.key == "no-alloc") {
        bool attached = false;
        for (const FunctionSym& fn : idx.functions) {
          if (fn.file == f.rel &&
              (fn.line == a.line || fn.line == a.line + 1)) {
            attached = true;
            break;
          }
        }
        if (!attached) {
          report(out, f.rel, a.line, "lint-annotation",
                 "no-alloc marker matches no function definition on this or "
                 "the next line (annotate the definition, not a "
                 "declaration)");
        }
      } else if (a.key == "shard-owned" || a.key == "shared-ok") {
        bool attached = false;
        for (const VarSym& v : idx.vars) {
          if (v.file == f.rel && (v.line == a.line || v.line == a.line + 1)) {
            attached = true;
            break;
          }
        }
        if (!attached) {
          report(out, f.rel, a.line, "lint-annotation",
                 "'" + a.key +
                     "' marker matches no shared-state declaration on this "
                     "or the next line; delete it");
        } else if (a.key == "shared-ok" && blank(a.payload)) {
          report(out, f.rel, a.line, "lint-annotation",
                 "shared-ok is missing its mandatory (reason)");
        }
      }
    }
  }
}

}  // namespace

void run_semantic_pass(const std::vector<SourceFile>& files, const Index& idx,
                       std::vector<Diagnostic>& out) {
  const CallGraph graph = resolve_calls(idx);
  const std::vector<AllocFact> facts = compute_alloc_facts(idx, graph);
  check_shared_state(idx, out);
  check_shard_ownership(files, idx, out);
  check_no_alloc(idx, graph, facts, out);
  check_include_cycles(files, idx, out);
  check_markers(files, idx, out);
}

}  // namespace ibridge::lint
