// The project-wide semantic pass: shared-state / shard-safety analysis and
// static no-alloc zones, built on the symbol index (index.hpp) and the
// include/call graphs (graph.hpp).
#pragma once

#include <vector>

#include "lint/index.hpp"
#include "lint/lint.hpp"

namespace ibridge::lint {

/// Appends the cross-file semantic diagnostics for the corpus:
///
///   shared-global   — mutable namespace-scope / class-static state in src/
///                     without a shard-owned / shared-ok annotation
///   static-local    — mutable function-local static or thread_local state
///                     in src/ without a shared-ok annotation
///   shard-ownership — shard-owned annotations missing their owner module,
///                     and writes to shard-owned state from other modules
///   no-alloc        — allocation sites and may-allocate calls inside
///                     functions annotated `// lint: no-alloc`
///   include-cycle   — cycles in the project #include graph
///
/// plus lint-annotation audits for the three marker keys (no-alloc,
/// shard-owned, shared-ok): a marker that attaches to no symbol, or a
/// shared-ok without its mandatory reason, is itself an error.
///
/// `idx` must be build_index(files).  Suppression filtering (alloc-ok) is
/// the caller's job — lint_corpus applies it per file, exactly as for the
/// token-level rules.
void run_semantic_pass(const std::vector<SourceFile>& files, const Index& idx,
                       std::vector<Diagnostic>& out);

}  // namespace ibridge::lint
