// Cluster assembly: one call wires devices, file systems, servers, metadata
// server, network and client into a runnable simulated parallel I/O system.
//
// This mirrors the paper's testbed: N data servers (8 by default), one
// metadata server, MPI client nodes, a 64 KB striping unit, and — when
// iBridge is enabled — a profiled disk model, a 10 GB SSD cache per server
// and the T-value board daemon.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "pvfs/client.hpp"
#include "pvfs/metadata.hpp"
#include "pvfs/server.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"
#include "storage/profiler.hpp"

namespace ibridge::cluster {

struct ClusterConfig {
  int data_servers = 8;
  std::int64_t stripe_unit = 64 * 1024;
  int client_nodes = 12;  ///< NICs on the client side
  int procs_per_node = 48;

  /// 0 (default): classic single-threaded simulator — byte-identical to
  /// every run before sharding existed.  >= 1: the sharded windowed core
  /// (sim::ShardGroup): shard 0 runs the client/MDS side and shard
  /// 1 + i / shard_group_size runs data server i, with `shards` capping the
  /// *worker thread* count.  The logical shard structure is fixed by the
  /// topology and grouping, so results are byte-identical across every
  /// `shards >= 1` setting; only wall-clock speed changes.  Requires
  /// positive network latency (the barrier lookahead) — the constructor
  /// throws std::invalid_argument otherwise.
  int shards = 0;

  /// Data servers per logical shard when sharded (clamped to >= 1).  With
  /// G > 1 hundreds of servers map onto a handful of shards — the scale
  /// tier's memory/thread lever.  Grouping is part of the *configuration*
  /// (like the stripe unit): a fixed grouping is byte-identical across
  /// worker counts, but different groupings batch cross-shard merges
  /// differently and may legitimately order same-tick ties differently.
  int shard_group_size = 1;

  /// Adaptive barrier-window cap in microseconds (0 = off).  When positive
  /// it must be >= the network wire latency; windows then widen up to this
  /// bound while other shards are idle or far in the future — fewer
  /// barriers on sparse timelines.  See sim::ShardGroup::set_adaptive_window
  /// for the safety argument.  Also part of the configuration: deterministic
  /// across worker counts at any fixed setting.
  double adaptive_window_us = 0.0;
  pvfs::DataServerConfig server;
  net::NetworkParams network;
  pvfs::ClientConfig client;

  /// Convenience named configurations matching the paper's three systems.
  static ClusterConfig stock();
  static ClusterConfig with_ibridge(core::IBridgeConfig ib = {});
  static ClusterConfig ssd_only();
};

/// The assembled system.  Owns every component; not copyable or movable.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  ~Cluster();

  /// The driver-facing simulator: shard 0 in a sharded cluster (where the
  /// client, MDS and all run()-family entry points live), the single
  /// simulator otherwise.  run()/run_while_pending() on it transparently
  /// drive the whole shard group.
  sim::Simulator& sim() { return *front_; }

  /// The shard group, or nullptr for a classic single-threaded cluster.
  sim::ShardGroup* shard_group() { return group_.get(); }

  pvfs::Client& client() { return *client_; }
  pvfs::MetadataServer& mds() { return *mds_; }
  pvfs::DataServer& server(int i) { return *servers_[static_cast<size_t>(i)]; }
  int server_count() const { return static_cast<int>(servers_.size()); }
  const ClusterConfig& config() const { return cfg_; }

  /// Create a striped file of `size` bytes (preallocated datafiles).
  /// Returns the existing handle when the name is already registered, so
  /// warm-cache reruns of a workload reuse the file and the iBridge state.
  pvfs::FileHandle create_file(const std::string& name, std::int64_t size);

  /// Restart the periodic daemons (T-board, write-back) that drain() stops.
  /// Workload drivers call this on entry so back-to-back runs on one
  /// cluster — the paper's repeated-execution scenario — behave correctly.
  void restart_daemons();

  /// Flush all iBridge caches to disk and run the simulation until every
  /// pending event drains.  The paper includes this write-back time in its
  /// program execution times.  Returns the simulated time at which the last
  /// dirty byte reached a disk — use this (not sim().now(), which also
  /// absorbs stale daemon timer events) as the program-end timestamp.
  sim::SimTime drain();

  /// Enable block tracing on one server's disk (Figs 2(c-e), 5).
  void enable_disk_trace(int server, bool keep_entries = false);

  /// Attach a SimCheck observer to every iBridge cache in the cluster
  /// (nullptr detaches; no-op on stock/SSD-only clusters).
  void install_observer(core::CacheObserver* obs);

  /// Attach a TraceSession to every layer — client request decomposition,
  /// server queueing/serving, cache operations, device dispatches (nullptr
  /// detaches everywhere).  The session must outlive the cluster or a
  /// subsequent set_trace(nullptr).
  void set_trace(obs::TraceSession* session);

  /// Attach a SimProfiler to every layer and install it as the simulator's
  /// step hook (nullptr detaches everywhere).  Wire before running — the
  /// profiler interns its categories and sizes its per-server heat tables
  /// here.  While attached, collect_metrics() also publishes the profiler's
  /// sim.* / prof.* / srv<N>.prof.* rows.
  void set_profiler(obs::SimProfiler* profiler);

  /// Publish every component's counters into `reg` under the naming scheme
  /// of obs/metrics.hpp: per-server "srv<N>.<subsystem>.<metric>" rows plus
  /// cluster-wide "cache.*" / "cluster.*" aggregates.
  void collect_metrics(obs::MetricsRegistry& reg) const;

  /// Snapshot collect_metrics() into `out` every `interval` of simulated
  /// time until drain() (or stop_metrics_sampler()) is called.  On the
  /// classic core samples are exact simulated-time ticks.  On a sharded
  /// cluster the sampler rides the ShardGroup barrier hook: each sample is
  /// emitted at its grid timestamp once the barrier horizon passes it, so
  /// counter values are those visible at that barrier (they may include up
  /// to one window of events past the grid point).  Both modes are
  /// deterministic — the sharded one is invariant across worker counts.
  void start_metrics_sampler(sim::SimTime interval, obs::TimeSeries* out);
  void stop_metrics_sampler();

  // ---- aggregate metrics over all servers ----
  sim::Bytes total_bytes_served() const;
  sim::Bytes ssd_bytes_served() const;
  sim::Bytes ssd_cached_bytes() const;
  double avg_service_ms() const;

 private:
  void schedule_sample(sim::SimTime interval, obs::TimeSeries* out,
                       std::uint64_t epoch);

  ClusterConfig cfg_;
  sim::Simulator sim_;  ///< the classic single simulator (cfg.shards == 0)
  std::unique_ptr<sim::ShardGroup> group_;  ///< set when cfg.shards >= 1
  sim::Simulator* front_ = &sim_;           ///< shard 0 or sim_
  bool sampler_running_ = false;
  std::uint64_t sampler_epoch_ = 0;
  sim::SimTime sampler_next_ = sim::SimTime::zero();  ///< sharded grid cursor
  std::unique_ptr<net::NetworkModel> net_;
  std::vector<net::Nic*> server_nics_;
  std::vector<net::Nic*> client_nics_;
  net::Nic* mds_nic_ = nullptr;
  std::vector<std::unique_ptr<pvfs::DataServer>> servers_;
  std::unique_ptr<pvfs::MetadataServer> mds_;
  std::unique_ptr<pvfs::Client> client_;
  obs::SimProfiler* profiler_ = nullptr;
};

/// Profile the configured disk model offline (scratch simulation) — the
/// seek curve iBridge's Equation (1) uses.  Deterministic for fixed params.
storage::SeekProfile profile_disk(const storage::HddParams& params);

}  // namespace ibridge::cluster
