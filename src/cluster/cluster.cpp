#include "cluster/cluster.hpp"

#include <cassert>

#include "storage/hdd.hpp"

namespace ibridge::cluster {

ClusterConfig ClusterConfig::stock() {
  ClusterConfig c;
  c.server.ibridge = core::IBridgeConfig::stock();
  c.client.tag_fragments = false;
  return c;
}

ClusterConfig ClusterConfig::with_ibridge(core::IBridgeConfig ib) {
  ClusterConfig c;
  ib.enabled = true;
  c.server.ibridge = ib;
  c.client.tag_fragments = true;
  c.client.fragment_threshold = ib.fragment_threshold;
  return c;
}

ClusterConfig ClusterConfig::ssd_only() {
  ClusterConfig c;
  c.server.ibridge = core::IBridgeConfig::stock();
  c.server.storage_mode = pvfs::StorageMode::kSsdOnly;
  c.client.tag_fragments = false;
  return c;
}

storage::SeekProfile profile_disk(const storage::HddParams& params) {
  // Offline profiling happens on an idle disk before deployment: use a
  // scratch simulator and a scratch device with the same parameters, with
  // anticipation off (the profiler issues one request at a time anyway).
  sim::Simulator scratch;
  storage::HddParams p = params;
  p.anticipation_ms = 0.0;
  storage::HddModel disk(scratch, p);
  return storage::DeviceProfiler().profile(scratch, disk);
}

Cluster::Cluster(const ClusterConfig& cfg) : cfg_(cfg) {
  net_ = std::make_unique<net::NetworkModel>(sim_, cfg.network);

  storage::SeekProfile profile;
  if (cfg.server.ibridge.enabled) {
    profile = profile_disk(cfg.server.hdd);
  }

  servers_.reserve(static_cast<std::size_t>(cfg.data_servers));
  std::vector<pvfs::DataServer*> raw;
  for (int i = 0; i < cfg.data_servers; ++i) {
    net::Nic& nic = net_->add_endpoint("ds" + std::to_string(i));
    server_nics_.push_back(&nic);
    servers_.push_back(std::make_unique<pvfs::DataServer>(
        sim_, sim::ServerId{i}, cfg.server, nic, profile));
    raw.push_back(servers_.back().get());
  }

  mds_nic_ = &net_->add_endpoint("mds");
  mds_ = std::make_unique<pvfs::MetadataServer>(
      sim_, raw, *mds_nic_, cfg.server.ibridge.t_report_interval);
  mds_->start_board_daemon();

  for (int i = 0; i < cfg.client_nodes; ++i) {
    client_nics_.push_back(&net_->add_endpoint("cn" + std::to_string(i)));
  }

  pvfs::ClientConfig cc = cfg.client;
  cc.procs_per_node = cfg.procs_per_node;
  client_ = std::make_unique<pvfs::Client>(sim_, *mds_, raw, *net_,
                                           client_nics_, cc);
}

Cluster::~Cluster() {
  mds_->stop();
  for (auto& s : servers_) {
    if (s->cache()) s->cache()->stop();
  }
}

pvfs::FileHandle Cluster::create_file(const std::string& name,
                                      std::int64_t size) {
  const pvfs::FileHandle existing = mds_->lookup(name);
  if (existing != pvfs::kInvalidHandle) return existing;
  return mds_->create_file(name, size, cfg_.stripe_unit);
}

void Cluster::restart_daemons() {
  mds_->start_board_daemon();
  for (auto& s : servers_) {
    if (s->cache()) s->cache()->start();
  }
}

sim::SimTime Cluster::drain() {
  // Stop periodic daemons so the event queue can empty, flush the caches,
  // then run everything down.
  mds_->stop();
  bool done = false;
  // Drain every server concurrently — the flushes overlap in simulated
  // time exactly as the real servers' write-back threads would.
  auto drain_all = [](Cluster& c, bool& flag) -> sim::Task<> {
    sim::JoinSet join(c.sim());
    for (int i = 0; i < c.server_count(); ++i) {
      if (c.server(i).cache()) join.add(c.server(i).cache()->drain());
    }
    co_await join.join();
    flag = true;
  };
  auto task = drain_all(*this, done);
  for (auto& s : servers_) {
    if (s->cache()) s->cache()->stop();
  }
  task.start();
  sim_.run_while_pending([&] { return done; });
  const sim::SimTime flushed = sim_.now();
  // Clear the queue (stale daemon wake-ups, in-flight background copies);
  // this may advance the clock past `flushed`, which callers must ignore.
  sim_.run();
  return flushed;
}

void Cluster::install_observer(core::CacheObserver* obs) {
  for (auto& s : servers_) s->set_observer(obs);
}

void Cluster::enable_disk_trace(int server, bool keep_entries) {
  auto& tr = servers_[static_cast<std::size_t>(server)]->disk().trace();
  tr.set_enabled(true);
  tr.set_keep_entries(keep_entries);
  tr.clear();
}

sim::Bytes Cluster::total_bytes_served() const {
  sim::Bytes sum = sim::Bytes::zero();
  for (const auto& s : servers_) sum += s->bytes_served();
  return sum;
}

sim::Bytes Cluster::ssd_bytes_served() const {
  sim::Bytes sum = sim::Bytes::zero();
  for (const auto& s : servers_) {
    if (const auto* c = s->cache()) sum += c->stats().ssd_bytes_served;
  }
  return sum;
}

sim::Bytes Cluster::ssd_cached_bytes() const {
  sim::Bytes sum = sim::Bytes::zero();
  for (const auto& s : servers_) {
    if (const auto* c = s->cache()) sum += c->cached_bytes();
  }
  return sum;
}

double Cluster::avg_service_ms() const {
  stats::Summary all;
  for (const auto& s : servers_) all.merge(s->service_meter().summary());
  return all.mean();
}

}  // namespace ibridge::cluster
