#include "cluster/cluster.hpp"

#include <cassert>

#include "storage/hdd.hpp"

namespace ibridge::cluster {

ClusterConfig ClusterConfig::stock() {
  ClusterConfig c;
  c.server.ibridge = core::IBridgeConfig::stock();
  c.client.tag_fragments = false;
  return c;
}

ClusterConfig ClusterConfig::with_ibridge(core::IBridgeConfig ib) {
  ClusterConfig c;
  ib.enabled = true;
  c.server.ibridge = ib;
  c.client.tag_fragments = true;
  c.client.fragment_threshold = ib.fragment_threshold;
  return c;
}

ClusterConfig ClusterConfig::ssd_only() {
  ClusterConfig c;
  c.server.ibridge = core::IBridgeConfig::stock();
  c.server.storage_mode = pvfs::StorageMode::kSsdOnly;
  c.client.tag_fragments = false;
  return c;
}

storage::SeekProfile profile_disk(const storage::HddParams& params) {
  // Offline profiling happens on an idle disk before deployment: use a
  // scratch simulator and a scratch device with the same parameters, with
  // anticipation off (the profiler issues one request at a time anyway).
  sim::Simulator scratch;
  storage::HddParams p = params;
  p.anticipation_ms = 0.0;
  storage::HddModel disk(scratch, p);
  return storage::DeviceProfiler().profile(scratch, disk);
}

Cluster::Cluster(const ClusterConfig& cfg) : cfg_(cfg) {
  const std::size_t client_events =
      static_cast<std::size_t>(cfg.client_nodes) *
          static_cast<std::size_t>(cfg.procs_per_node) * 4 +
      256;
  const std::size_t server_events = 64;
  const int group_size = cfg.shard_group_size < 1 ? 1 : cfg.shard_group_size;
  if (cfg.shards >= 1) {
    // Sharded core: shard 0 = client + MDS side, shard 1 + i / group_size
    // = data server i.  The logical structure is fixed by the topology and
    // the grouping; cfg.shards only caps the worker-thread count, so any
    // shards >= 1 produces byte-identical results for a fixed grouping.
    // The barrier lookahead is the network wire latency — the minimum time
    // any cross-shard interaction takes (ShardGroup rejects a non-positive
    // lookahead, i.e. a zero-latency network).
    const int groups =
        cfg.data_servers == 0 ? 0 : (cfg.data_servers - 1) / group_size + 1;
    const int logical = 1 + groups;
    const int workers = cfg.shards < logical ? cfg.shards : logical;
    group_ = std::make_unique<sim::ShardGroup>(
        logical, cfg.network.wire_latency(), workers);
    if (cfg.adaptive_window_us > 0.0) {
      group_->set_adaptive_window(
          sim::SimTime::from_seconds(cfg.adaptive_window_us / 1e6));
    }
    front_ = &group_->shard(0);
    front_->reserve(client_events);
    for (int g = 0; g < groups; ++g) {
      // Each group shard hosts up to `group_size` servers' event streams.
      const int members = g == groups - 1
                              ? cfg.data_servers - g * group_size
                              : group_size;
      group_->shard(1 + g).reserve(
          static_cast<std::size_t>(members) * server_events + 256);
    }
  } else {
    // Pre-size the event heap for the steady-state population: every rank
    // can have a few events in flight (NIC, disk queue, coroutine resume)
    // plus per-server daemons.  Avoids heap regrowth pauses mid-run.
    sim_.reserve(client_events +
                 static_cast<std::size_t>(cfg.data_servers) * server_events);
  }
  net_ = std::make_unique<net::NetworkModel>(*front_, cfg.network);
  net_->set_shard_group(group_.get());

  storage::SeekProfile profile;
  if (cfg.server.ibridge.enabled) {
    profile = profile_disk(cfg.server.hdd);
  }

  servers_.reserve(static_cast<std::size_t>(cfg.data_servers));
  std::vector<pvfs::DataServer*> raw;
  for (int i = 0; i < cfg.data_servers; ++i) {
    sim::Simulator& ssim = group_ ? group_->shard(1 + i / group_size) : sim_;
    net::Nic& nic = net_->add_endpoint("ds" + std::to_string(i), ssim);
    server_nics_.push_back(&nic);
    servers_.push_back(std::make_unique<pvfs::DataServer>(
        ssim, sim::ServerId{i}, cfg.server, nic, profile));
    raw.push_back(servers_.back().get());
  }

  mds_nic_ = &net_->add_endpoint("mds");
  mds_ = std::make_unique<pvfs::MetadataServer>(
      *front_, raw, *mds_nic_, cfg.server.ibridge.t_report_interval);
  mds_->set_shard_group(group_.get());
  mds_->start_board_daemon();

  for (int i = 0; i < cfg.client_nodes; ++i) {
    client_nics_.push_back(&net_->add_endpoint("cn" + std::to_string(i)));
  }

  pvfs::ClientConfig cc = cfg.client;
  cc.procs_per_node = cfg.procs_per_node;
  client_ = std::make_unique<pvfs::Client>(*front_, *mds_, raw, *net_,
                                           client_nics_, cc);
}

Cluster::~Cluster() {
  mds_->stop();
  for (auto& s : servers_) {
    if (s->cache()) s->cache()->stop();
  }
}

pvfs::FileHandle Cluster::create_file(const std::string& name,
                                      std::int64_t size) {
  const pvfs::FileHandle existing = mds_->lookup(name);
  if (existing != pvfs::kInvalidHandle) return existing;
  return mds_->create_file(name, size, cfg_.stripe_unit);
}

void Cluster::restart_daemons() {
  mds_->start_board_daemon();
  for (auto& s : servers_) {
    if (s->cache()) s->cache()->start();
  }
}

sim::SimTime Cluster::drain() {
  // Stop periodic daemons so the event queue can empty, flush the caches,
  // then run everything down.
  mds_->stop();
  stop_metrics_sampler();
  bool done = false;
  // Drain one server's cache, ending on shard 0: the JoinSet's completion
  // counter lives there, so a sharded cluster must hop back before the
  // wrapper increments it.  (Unsharded, the hop is skipped and the extra
  // coroutine layer schedules no events — the timeline is unchanged.)
  auto drain_one = [](Cluster& c, pvfs::DataServer& s) -> sim::Task<> {
    co_await s.cache()->drain();
    if (c.shard_group() != nullptr) {
      co_await c.shard_group()->hop(s.sim(), c.sim());
    }
  };
  // Drain every server concurrently — the flushes overlap in simulated
  // time exactly as the real servers' write-back threads would.
  auto drain_all = [&drain_one](Cluster& c, bool& flag) -> sim::Task<> {
    sim::JoinSet join(c.sim());
    for (int i = 0; i < c.server_count(); ++i) {
      if (c.server(i).cache()) join.add(drain_one(c, c.server(i)));
    }
    co_await join.join();
    flag = true;
  };
  auto task = drain_all(*this, done);
  for (auto& s : servers_) {
    if (s->cache()) s->cache()->stop();
  }
  task.start();
  sim().run_while_pending([&] { return done; });
  const sim::SimTime flushed = sim().now();
  // Clear the queue (stale daemon wake-ups, in-flight background copies);
  // this may advance the clock past `flushed`, which callers must ignore.
  sim().run();
  return flushed;
}

void Cluster::install_observer(core::CacheObserver* obs) {
  for (auto& s : servers_) s->set_observer(obs);
}

void Cluster::set_trace(obs::TraceSession* session) {
  // TraceSession appends to shared rings from every layer; it has no
  // cross-shard story yet, so tracing requires the classic core.
  assert(session == nullptr || group_ == nullptr);
  client_->set_trace(session);
  for (auto& s : servers_) s->set_trace(session);
}

void Cluster::set_profiler(obs::SimProfiler* profiler) {
  profiler_ = profiler;
  if (profiler != nullptr) {
    profiler->set_server_count(servers_.size());
    client_->set_profiler(profiler, profiler->category("client"));
  } else {
    client_->set_profiler(nullptr, 0);
  }
  // Interns categories — must precede lane creation (lanes size their
  // counters to the categories known at creation).
  for (auto& s : servers_) s->set_profiler(profiler);
  if (group_ == nullptr) {
    sim_.set_step_hook(profiler);
    return;
  }
  // Sharded: every shard gets its own lane hook; the profiler's accessors
  // fan the lanes back in (see obs/profiler.hpp).
  if (profiler != nullptr) {
    profiler->set_lane_count(static_cast<std::size_t>(group_->shards()));
  }
  for (int k = 0; k < group_->shards(); ++k) {
    group_->shard(k).set_step_hook(
        profiler == nullptr ? nullptr
                            : profiler->lane_hook(static_cast<std::size_t>(k)));
  }
}

void Cluster::collect_metrics(obs::MetricsRegistry& reg) const {
  reg.counter("client.bytes_completed") = client_->bytes_completed();
  if (profiler_ != nullptr) profiler_->publish(reg);

  core::CacheStats agg;
  bool any_cache = false;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    const auto& s = *servers_[i];
    const std::string p = "srv" + std::to_string(i) + ".";
    reg.counter(p + "server.bytes_served") = s.bytes_served().count();
    reg.gauge(p + "server.service_ms.mean") = s.service_meter().mean_ms();
    reg.gauge(p + "server.service_ms.p50") = s.service_meter().p50_ms();
    reg.gauge(p + "server.service_ms.p99") = s.service_meter().p99_ms();

    const auto& disk = s.disk();
    reg.gauge(p + "disk.busy_ms") = disk.busy_time().to_millis();
    reg.counter(p + "disk.read_bytes") = disk.bytes_read();
    reg.counter(p + "disk.write_bytes") = disk.bytes_written();
    if (const auto* ssd = s.ssd()) {
      reg.gauge(p + "ssd.busy_ms") = ssd->busy_time().to_millis();
      reg.counter(p + "ssd.read_bytes") = ssd->bytes_read();
      reg.counter(p + "ssd.write_bytes") = ssd->bytes_written();
    }

    const auto* c = s.cache();
    if (c == nullptr) continue;
    any_cache = true;
    const core::CacheStats& st = c->stats();
    reg.counter(p + "cache.read_hits") =
        static_cast<std::int64_t>(st.read_hits);
    reg.counter(p + "cache.read_misses") =
        static_cast<std::int64_t>(st.read_misses);
    reg.counter(p + "cache.write_admits") =
        static_cast<std::int64_t>(st.write_admits);
    reg.counter(p + "cache.write_disk") =
        static_cast<std::int64_t>(st.write_disk);
    reg.counter(p + "cache.stages") = static_cast<std::int64_t>(st.stages);
    reg.counter(p + "cache.evictions") =
        static_cast<std::int64_t>(st.evictions);
    reg.counter(p + "cache.writebacks") =
        static_cast<std::int64_t>(st.writebacks);
    reg.counter(p + "cache.writeback_bytes") = st.writeback_bytes.count();
    reg.gauge(p + "cache.cached_bytes") =
        static_cast<double>(c->cached_bytes().count());
    for (int k = 0; k < core::kNumClasses; ++k) {
      const auto klass = static_cast<core::CacheClass>(k);
      const std::string suffix = core::to_string(klass);
      reg.counter(p + "cache.admit." + suffix) =
          static_cast<std::int64_t>(st.admit_by_class[k]);
      reg.gauge(p + "cache.partition_bytes." + suffix) =
          static_cast<double>(c->table().bytes_cached(klass).count());
      reg.gauge(p + "cache.quota_bytes." + suffix) = static_cast<double>(
          c->partition().quota(c->table(), klass).count());
    }

    // Cluster-wide aggregates.
    agg.read_hits += st.read_hits;
    agg.read_misses += st.read_misses;
    agg.write_admits += st.write_admits;
    agg.write_disk += st.write_disk;
    agg.stages += st.stages;
    agg.evictions += st.evictions;
    agg.writebacks += st.writebacks;
    agg.boosts += st.boosts;
    agg.cleanings += st.cleanings;
    agg.writeback_bytes += st.writeback_bytes;
    agg.ssd_bytes_served += st.ssd_bytes_served;
    agg.disk_bytes_served += st.disk_bytes_served;
    reg.histogram("cache.ret_estimate_ms").merge(st.ret_estimate_ms);
  }

  reg.counter("cluster.bytes_served") = total_bytes_served().count();
  if (!any_cache) return;
  reg.counter("cache.read_hits") = static_cast<std::int64_t>(agg.read_hits);
  reg.counter("cache.read_misses") =
      static_cast<std::int64_t>(agg.read_misses);
  reg.counter("cache.write_admits") =
      static_cast<std::int64_t>(agg.write_admits);
  reg.counter("cache.write_disk") = static_cast<std::int64_t>(agg.write_disk);
  reg.counter("cache.stages") = static_cast<std::int64_t>(agg.stages);
  reg.counter("cache.evictions") = static_cast<std::int64_t>(agg.evictions);
  reg.counter("cache.writebacks") = static_cast<std::int64_t>(agg.writebacks);
  reg.counter("cache.boosts") = static_cast<std::int64_t>(agg.boosts);
  reg.counter("cache.cleanings") = static_cast<std::int64_t>(agg.cleanings);
  reg.counter("cache.writeback_bytes") = agg.writeback_bytes.count();
  reg.counter("cache.ssd_bytes_served") = agg.ssd_bytes_served.count();
  reg.counter("cache.disk_bytes_served") = agg.disk_bytes_served.count();
  reg.gauge("cache.cached_bytes") =
      static_cast<double>(ssd_cached_bytes().count());
}

void Cluster::start_metrics_sampler(sim::SimTime interval,
                                    obs::TimeSeries* out) {
  assert(out != nullptr);
  assert(interval > sim::SimTime::zero());
  sampler_running_ = true;
  const std::uint64_t epoch = ++sampler_epoch_;
  if (group_ == nullptr) {
    schedule_sample(interval, out, epoch);
    return;
  }
  // Sharded: the sampler cannot schedule a tick that reads every server's
  // counters mid-window (cross-shard reads race with the workers).  Instead
  // it rides the barrier hook, where all workers are idle and every event
  // before the horizon has executed: each grid point is emitted, with its
  // grid timestamp, once the horizon passes it.  The horizon is a pure
  // function of the schedule, so the samples are worker-count invariant.
  sampler_next_ = front_->now() + interval;
  group_->set_barrier_hook([this, interval, out, epoch](sim::SimTime horizon) {
    if (!sampler_running_ || epoch != sampler_epoch_) return;
    while (sampler_next_ < horizon) {
      obs::MetricsRegistry reg;
      collect_metrics(reg);
      out->sample(sampler_next_, reg);
      sampler_next_ += interval;
    }
  });
}

void Cluster::stop_metrics_sampler() {
  sampler_running_ = false;
  ++sampler_epoch_;
  if (group_ != nullptr) group_->set_barrier_hook(nullptr);
}

void Cluster::schedule_sample(sim::SimTime interval, obs::TimeSeries* out,
                              std::uint64_t epoch) {
  sim_.schedule(interval, [this, interval, out, epoch] {
    if (!sampler_running_ || epoch != sampler_epoch_) return;
    obs::MetricsRegistry reg;
    collect_metrics(reg);
    out->sample(sim_.now(), reg);
    schedule_sample(interval, out, epoch);
  });
}

void Cluster::enable_disk_trace(int server, bool keep_entries) {
  auto& tr = servers_[static_cast<std::size_t>(server)]->disk().trace();
  tr.set_enabled(true);
  tr.set_keep_entries(keep_entries);
  tr.clear();
}

sim::Bytes Cluster::total_bytes_served() const {
  sim::Bytes sum = sim::Bytes::zero();
  for (const auto& s : servers_) sum += s->bytes_served();
  return sum;
}

sim::Bytes Cluster::ssd_bytes_served() const {
  sim::Bytes sum = sim::Bytes::zero();
  for (const auto& s : servers_) {
    if (const auto* c = s->cache()) sum += c->stats().ssd_bytes_served;
  }
  return sum;
}

sim::Bytes Cluster::ssd_cached_bytes() const {
  sim::Bytes sum = sim::Bytes::zero();
  for (const auto& s : servers_) {
    if (const auto* c = s->cache()) sum += c->cached_bytes();
  }
  return sum;
}

double Cluster::avg_service_ms() const {
  stats::Summary all;
  for (const auto& s : servers_) all.merge(s->service_meter().summary());
  return all.mean();
}

}  // namespace ibridge::cluster
