// blktrace-equivalent: records block-level requests dispatched to a device.
//
// The paper uses Linux blktrace to obtain the distributions of block-request
// sizes (Figures 2(c-e) and 5), measured in 512-byte sectors.  The simulated
// devices call BlockTraceRecorder::record() for each request they dispatch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "sim/units.hpp"
#include "stats/histogram.hpp"

namespace ibridge::stats {

inline constexpr std::int64_t kSectorBytes = 512;

enum class IoDirection : std::uint8_t { kRead, kWrite };

inline const char* to_string(IoDirection d) {
  return d == IoDirection::kRead ? "read" : "write";
}

/// One dispatched block request, as blktrace would log it.
struct BlockTraceEntry {
  sim::SimTime dispatch_time;
  IoDirection dir;
  std::int64_t lbn;         // lint: units-ok (LBNs are sector addresses, not byte offsets)
  std::int64_t sectors;     // length in 512 B sectors
  sim::SimTime service;     // modelled device service time
};

/// Accumulates dispatched requests and derives size distributions.
class BlockTraceRecorder {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Keep the full entry log (needed only for detailed inspection; the
  /// histograms are always maintained).
  void set_keep_entries(bool on) { keep_entries_ = on; }

  // lint: units-ok (LBN parameter below is a sector address)
  void record(sim::SimTime when, IoDirection dir, std::int64_t lbn,
              sim::Bytes bytes, sim::SimTime service) {
    if (!enabled_) return;
    const std::int64_t sectors =
        (bytes.count() + kSectorBytes - 1) / kSectorBytes;
    size_hist_.add(sectors);
    (dir == IoDirection::kRead ? read_bytes_ : write_bytes_) += bytes;
    service_ms_.add(service.to_millis());
    if (keep_entries_)
      entries_.push_back({when, dir, lbn, sectors, service});
  }

  /// Distribution of request sizes in sectors (Fig. 2(c-e), Fig. 5).
  const IntHistogram& size_histogram() const { return size_hist_; }
  const Summary& service_ms() const { return service_ms_; }
  const std::vector<BlockTraceEntry>& entries() const { return entries_; }
  std::uint64_t requests() const { return size_hist_.total(); }
  sim::Bytes read_bytes() const { return read_bytes_; }
  sim::Bytes write_bytes() const { return write_bytes_; }

  void clear() {
    size_hist_.clear();
    service_ms_ = {};
    entries_.clear();
    read_bytes_ = write_bytes_ = sim::Bytes::zero();
  }

 private:
  bool enabled_ = true;
  bool keep_entries_ = false;
  IntHistogram size_hist_;
  Summary service_ms_;
  std::vector<BlockTraceEntry> entries_;
  sim::Bytes read_bytes_;
  sim::Bytes write_bytes_;
};

}  // namespace ibridge::stats
