// General-purpose statistics accumulators used throughout the simulator.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

namespace ibridge::stats {

/// Streaming summary of a scalar series: count/mean/min/max/variance
/// (Welford's online algorithm).
class Summary {
 public:
  void add(double x) {
    ++n_;
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void merge(const Summary& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
    m2_ += o.m2_ + delta * delta * na * nb / (na + nb);
    mean_ = (na * mean_ + nb * o.mean_) / (na + nb);
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
    n_ += o.n_;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

/// Sample-keeping distribution with exact percentiles.  Unlike Summary it
/// stores every observation (sorted lazily), so it answers any quantile
/// exactly — used for return-estimate and latency distributions in the
/// observability metrics registry, where sample counts stay modest.
class Histogram {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = samples_.size() <= 1;
    moments_.add(x);
  }

  std::uint64_t count() const { return moments_.count(); }
  double mean() const { return moments_.mean(); }
  double min() const { return moments_.min(); }
  double max() const { return moments_.max(); }
  double sum() const { return moments_.sum(); }
  const Summary& summary() const { return moments_; }

  /// Percentile estimation method.  kNearestRank is the historical default
  /// (ceil(p/100 * n)-th order statistic); kLinear interpolates between the
  /// two bracketing order statistics (the "R-7" convention used by numpy's
  /// default percentile), which is smoother for small n.
  enum class Interp { kNearestRank, kLinear };

  /// Percentile, `p` in [0, 100].  Returns 0 when empty, the sole sample
  /// when count()==1, min() for p<=0 and max() for p>=100.
  double percentile(double p, Interp interp = Interp::kNearestRank) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    if (p <= 0.0) return samples_.front();
    if (p >= 100.0) return samples_.back();
    if (interp == Interp::kLinear) {
      const double h =
          p / 100.0 * static_cast<double>(samples_.size() - 1);
      const auto lo = static_cast<std::size_t>(std::floor(h));
      const auto hi = std::min(lo + 1, samples_.size() - 1);
      const double frac = h - static_cast<double>(lo);
      return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
    }
    const auto n = static_cast<double>(samples_.size());
    const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    return samples_[rank == 0 ? 0 : rank - 1];
  }

  double median() const { return percentile(50.0); }

  /// The raw observations.  Sorted ascending if a percentile has been asked
  /// since the last add/merge, otherwise in insertion order — callers that
  /// need a specific order must not rely on it.
  const std::vector<double>& samples() const { return samples_; }

  void merge(const Histogram& o) {
    samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
    sorted_ = samples_.size() <= 1;
    moments_.merge(o.moments_);
  }

  void clear() {
    samples_.clear();
    sorted_ = true;
    moments_ = {};
  }

 private:
  // percentile() is logically const; the lazy sort is an implementation
  // detail (same observable sequence either way).
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  Summary moments_;
};

/// Exact histogram over integer keys.  Used for block-request size
/// distributions where the key is the request size in 512 B sectors.
///
/// Keys in [0, kDenseKeys) — every realistic sector count; the schedulers
/// merge to at most 1024 sectors — live in a flat array sized once on first
/// use, so the per-dispatch add() on the device hot path never allocates in
/// steady state (a sparse map would insert a fresh tree node for every new
/// distinct size, which the scale campaign's zero-allocs-per-request gate
/// flagged).  Outlier keys fall back to the sparse map, keeping the
/// histogram exact for arbitrary inputs.
class IntHistogram {
 public:
  static constexpr std::int64_t kDenseKeys = 2048;

  void add(std::int64_t key, std::uint64_t weight = 1) {
    if (key >= 0 && key < kDenseKeys) {
      if (dense_.empty()) dense_.resize(static_cast<std::size_t>(kDenseKeys));
      dense_[static_cast<std::size_t>(key)] += weight;
    } else {
      bins_[key] += weight;
    }
    total_ += weight;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::int64_t key) const {
    if (key >= 0 && key < kDenseKeys) {
      return static_cast<std::size_t>(key) < dense_.size()
                 ? dense_[static_cast<std::size_t>(key)]
                 : 0;
    }
    auto it = bins_.find(key);
    return it == bins_.end() ? 0 : it->second;
  }
  double fraction(std::int64_t key) const {
    return total_ ? static_cast<double>(count(key)) /
                        static_cast<double>(total_)
                  : 0.0;
  }

  /// Keys sorted ascending.  The sparse map holds only keys outside
  /// [0, kDenseKeys), so negatives come first, the dense lane next, and
  /// oversize keys last — each range already sorted.
  std::vector<std::int64_t> keys() const {
    std::vector<std::int64_t> ks;
    auto it = bins_.begin();
    for (; it != bins_.end() && it->first < 0; ++it) ks.push_back(it->first);
    for (std::size_t k = 0; k < dense_.size(); ++k) {
      if (dense_[k] != 0) ks.push_back(static_cast<std::int64_t>(k));
    }
    for (; it != bins_.end(); ++it) ks.push_back(it->first);
    return ks;
  }

  /// The `n` most frequent keys, descending by count.
  std::vector<std::pair<std::int64_t, std::uint64_t>> top(std::size_t n) const {
    std::vector<std::pair<std::int64_t, std::uint64_t>> v(bins_.begin(),
                                                          bins_.end());
    for (std::size_t k = 0; k < dense_.size(); ++k) {
      if (dense_[k] != 0) v.emplace_back(static_cast<std::int64_t>(k), dense_[k]);
    }
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (v.size() > n) v.resize(n);
    return v;
  }

  /// Weighted mean of keys.
  double mean() const {
    if (!total_) return 0.0;
    double s = 0.0;
    for (const auto& [k, c] : bins_)
      s += static_cast<double>(k) * static_cast<double>(c);
    for (std::size_t k = 0; k < dense_.size(); ++k)
      s += static_cast<double>(k) * static_cast<double>(dense_[k]);
    return s / static_cast<double>(total_);
  }

  void clear() {
    bins_.clear();
    dense_.clear();
    total_ = 0;
  }

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::vector<std::uint64_t> dense_;  // lane for keys in [0, kDenseKeys)
  std::uint64_t total_ = 0;
};

}  // namespace ibridge::stats
