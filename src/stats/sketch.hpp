// Bounded-memory quantile estimators for always-on observability.
//
// stats::Histogram keeps every sample, so its memory grows O(observations) —
// fine for a few thousand return estimates, fatal for the million-rank scale
// campaign (ROADMAP).  This header provides the two bounded alternatives the
// MetricsRegistry histogram policy dispatches to:
//
//   QuantileSketch — a DDSketch-style log-bucketed sketch with a *guaranteed*
//     relative error and O(1) worst-case memory.  Unlike the textbook
//     DDSketch it is parameterized by an integer buckets-per-octave count and
//     maps values to buckets with a piecewise-linear log2 approximation built
//     from frexp/ldexp/floor only.  Every operation is an exactly-rounded
//     IEEE primitive, so bucket indices — and therefore digests, merges, and
//     quantile answers — are bit-identical across platforms and libm
//     versions (the bench-diff baselines rely on this; std::log is *not*
//     correctly rounded everywhere).
//
//   Reservoir — classic Algorithm R uniform sampling, seeded from sim::Rng,
//     as the fallback when the value distribution is pathological for log
//     buckets (e.g. signed deltas centered on zero).
//
// Both are deterministic functions of their input sequence and both merge:
// QuantileSketch::merge is *exact* and associative on the bucket counts
// (integer sums), which is what future per-shard registries need.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "stats/histogram.hpp"

namespace ibridge::stats {

/// Log-bucketed quantile sketch with relative error <= 1/buckets_per_octave.
///
/// Mapping: a positive value x = m * 2^e (frexp, m in [0.5, 1)) has
/// approx_log2(x) = (e - 1) + (2m - 1), the piecewise-linear interpolation of
/// log2 that is exact at powers of two.  Bucket i covers
/// approx_log2(x) * B in [i, i+1); its representative value is the midpoint
/// mapped back through the (monotone, exactly invertible) approximation.
/// Within one bucket, |x - x_hat| <= 2^k * 0.5/B while x >= 2^k, so the
/// answer is within 1/B of the true quantile *value* — the DDSketch
/// guarantee, achieved with exact float ops only.
///
/// Values are clamped to [2^kMinExp, 2^kMaxExp); out-of-range observations
/// land in underflow/overflow counters whose quantile answer is the exact
/// observed min/max.  The bucket-index range is therefore fixed by
/// construction — (kMaxExp - kMinExp) * B buckets at most — which is the
/// O(1) memory bound (asserted by bench_obs --check); occupied buckets are
/// stored sparsely, so typical metrics use a few hundred bytes.
class QuantileSketch {
 public:
  static constexpr int kMinExp = -20;  ///< ~1e-6: below = underflow
  static constexpr int kMaxExp = 40;   ///< ~1e12: above = overflow

  explicit QuantileSketch(int buckets_per_octave = 100)
      : per_octave_(buckets_per_octave) {
    assert(per_octave_ >= 1 && per_octave_ <= 4096);
  }

  /// Guaranteed worst-case relative error of percentile() for in-range
  /// values: 1 / buckets_per_octave.
  double relative_error() const { return 1.0 / per_octave_; }
  int buckets_per_octave() const { return per_octave_; }

  void add(double x) {
    moments_.add(x);
    if (!(x >= min_value())) {  // catches negatives, zero, and NaN
      ++underflow_;
      return;
    }
    if (x >= max_value()) {
      ++overflow_;
      return;
    }
    bump(index_of(x), 1);
  }

  std::uint64_t count() const { return moments_.count(); }
  double sum() const { return moments_.sum(); }
  double mean() const { return moments_.mean(); }
  double min() const { return moments_.min(); }
  double max() const { return moments_.max(); }
  const Summary& summary() const { return moments_; }

  /// Nearest-rank percentile estimate, `p` in [0, 100] — same conventions as
  /// Histogram::percentile (0 when empty, min for p<=0, max for p>=100).
  /// In-range answers are within relative_error() of the exact value.
  double percentile(double p) const {
    const std::uint64_t n = moments_.count();
    if (n == 0) return 0.0;
    if (p <= 0.0) return moments_.min();
    if (p >= 100.0) return moments_.max();
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    std::uint64_t seen = underflow_;
    if (rank <= seen) return moments_.min();
    for (const Bucket& b : buckets_) {
      seen += b.count;
      if (rank <= seen) {
        return std::clamp(value_of(b.index), moments_.min(), moments_.max());
      }
    }
    return moments_.max();
  }

  double median() const { return percentile(50.0); }

  /// Exact merge: bucket counts are integer sums, so merging is associative
  /// and commutative (the moments' mean/variance merge in floating point and
  /// are not — quantiles and digests never depend on them).
  void merge(const QuantileSketch& o) {
    assert(per_octave_ == o.per_octave_ && "merging incompatible sketches");
    underflow_ += o.underflow_;
    overflow_ += o.overflow_;
    for (const Bucket& b : o.buckets_) bump(b.index, b.count);
    moments_.merge(o.moments_);
  }

  void clear() {
    buckets_.clear();
    underflow_ = overflow_ = 0;
    moments_ = {};
  }

  /// Preallocate the worst-case bucket footprint — (kMaxExp - kMinExp) *
  /// buckets_per_octave entries — so add() never reallocates, no matter
  /// which indices the stream discovers.  Opted into by always-on hot-path
  /// meters (the scale campaign's zero-allocs-per-request serve gate);
  /// registry metrics stay lazily sized at a few hundred bytes.
  void reserve_full() {
    buckets_.reserve(static_cast<std::size_t>(kMaxExp - kMinExp) *
                     static_cast<std::size_t>(per_octave_));
  }

  std::size_t bucket_count() const { return buckets_.size(); }

  /// Bytes held beyond sizeof(*this) — the O(1) bound bench_obs asserts.
  std::size_t memory_bytes() const {
    return sizeof(*this) + buckets_.capacity() * sizeof(Bucket);
  }

  /// Order-sensitive-free fingerprint of the distribution state: a stable
  /// mix over (index, count) pairs plus the under/overflow counters.  Two
  /// sketches that merged the same multiset of observations in any order
  /// have equal digests — the proof hook for --jobs determinism.
  std::uint64_t digest() const {
    std::uint64_t s = 0x6f62735fULL + static_cast<std::uint64_t>(per_octave_);
    std::uint64_t h = sim::splitmix64(s);
    const auto mix = [&](std::uint64_t v) {
      s ^= v;
      h ^= sim::splitmix64(s);
    };
    mix(underflow_);
    mix(overflow_);
    for (const Bucket& b : buckets_) {
      mix(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(b.index)));
      mix(b.count);
    }
    return h;
  }

 private:
  struct Bucket {
    std::int32_t index = 0;
    std::uint64_t count = 0;
  };

  static double min_value() { return std::ldexp(1.0, kMinExp); }
  static double max_value() { return std::ldexp(1.0, kMaxExp); }

  /// floor(approx_log2(x) * B) via frexp — exact, platform-independent.
  std::int32_t index_of(double x) const {
    int e = 0;
    const double m = std::frexp(x, &e);  // x = m * 2^e, m in [0.5, 1)
    const double approx = static_cast<double>(e - 1) + (2.0 * m - 1.0);
    return static_cast<std::int32_t>(
        std::floor(approx * static_cast<double>(per_octave_)));
  }

  /// Inverse map of the bucket midpoint: u = (i + 0.5) / B lives in octave
  /// k = floor(u); x = (u - k + 1) * 2^k.
  double value_of(std::int32_t i) const {
    const double u = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(per_octave_);
    const double k = std::floor(u);
    return std::ldexp(u - k + 1.0, static_cast<int>(k));
  }

  void bump(std::int32_t index, std::uint64_t by) {
    const auto it = std::lower_bound(
        buckets_.begin(), buckets_.end(), index,
        [](const Bucket& b, std::int32_t i) { return b.index < i; });
    if (it != buckets_.end() && it->index == index) {
      it->count += by;
      return;
    }
    buckets_.insert(it, Bucket{index, by});
  }

  int per_octave_;
  std::vector<Bucket> buckets_;  ///< sorted by index
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  Summary moments_;
};

/// Fixed-capacity uniform sample of a stream (Algorithm R), seeded from
/// sim::Rng so runs are reproducible.  Quantiles are nearest-rank over the
/// kept sample — approximate with no distribution assumptions, the fallback
/// for metrics whose values log buckets handle poorly (signed deltas,
/// zero-heavy series).
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity = 1024,
                     std::uint64_t seed = 0x0b5e55ed)
      : capacity_(capacity == 0 ? 1 : capacity), rng_(seed) {}

  void add(double x) {
    moments_.add(x);
    const std::uint64_t i = moments_.count() - 1;
    if (kept_.size() < capacity_) {
      kept_.push_back(x);
      return;
    }
    const std::uint64_t j = rng_.below(i + 1);
    if (j < capacity_) kept_[static_cast<std::size_t>(j)] = x;
  }

  std::uint64_t count() const { return moments_.count(); }
  double sum() const { return moments_.sum(); }
  double mean() const { return moments_.mean(); }
  double min() const { return moments_.min(); }
  double max() const { return moments_.max(); }
  const Summary& summary() const { return moments_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t kept() const { return kept_.size(); }

  std::size_t memory_bytes() const {
    return sizeof(*this) + kept_.capacity() * sizeof(double);
  }

  /// Nearest-rank percentile over the kept sample (conventions match
  /// Histogram::percentile).  Exact while count() <= capacity.
  double percentile(double p) const {
    if (kept_.empty()) return 0.0;
    std::vector<double> s(kept_);
    std::sort(s.begin(), s.end());
    if (p <= 0.0) return s.front();
    if (p >= 100.0) return s.back();
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(s.size())));
    return s[rank == 0 ? 0 : rank - 1];
  }

  double median() const { return percentile(50.0); }

  /// Deterministic but approximate: the other reservoir's kept samples are
  /// re-fed through Algorithm R (they re-compete for slots).  Unlike
  /// QuantileSketch::merge this is order-sensitive by construction.
  void merge(const Reservoir& o) {
    const std::uint64_t before = moments_.count();
    for (std::size_t k = 0; k < o.kept_.size(); ++k) {
      const double x = o.kept_[k];
      const std::uint64_t i = before + static_cast<std::uint64_t>(k);
      if (kept_.size() < capacity_) {
        kept_.push_back(x);
      } else {
        const std::uint64_t j = rng_.below(i + 1);
        if (j < capacity_) kept_[static_cast<std::size_t>(j)] = x;
      }
    }
    moments_.merge(o.moments_);
  }

  void clear() {
    kept_.clear();
    moments_ = {};
  }

 private:
  std::size_t capacity_;
  sim::Rng rng_;
  std::vector<double> kept_;
  Summary moments_;
};

}  // namespace ibridge::stats
