// Throughput and service-time meters scraped by the benchmark harness.
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "stats/histogram.hpp"

namespace ibridge::stats {

/// Measures aggregate data volume over a simulated interval.
class ThroughputMeter {
 public:
  void start(sim::SimTime now) {
    start_ = now;
    bytes_ = 0;
  }
  void add_bytes(std::int64_t b) { bytes_ += b; }
  void stop(sim::SimTime now) { stop_ = now; }

  std::int64_t bytes() const { return bytes_; }
  sim::SimTime elapsed() const { return stop_ - start_; }

  /// MB/s with MB = 10^6 bytes (matching the paper's figures).
  double mbps() const {
    const double secs = elapsed().to_seconds();
    return secs > 0 ? static_cast<double>(bytes_) / 1e6 / secs : 0.0;
  }

 private:
  sim::SimTime start_;
  sim::SimTime stop_;
  std::int64_t bytes_ = 0;
};

/// Per-request service-time accumulator (Table III replay metric).
class ServiceTimeMeter {
 public:
  void add(sim::SimTime t) { ms_.add(t.to_millis()); }
  double mean_ms() const { return ms_.mean(); }
  std::uint64_t count() const { return ms_.count(); }
  const Summary& summary() const { return ms_; }

 private:
  Summary ms_;
};

}  // namespace ibridge::stats
