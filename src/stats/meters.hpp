// Throughput and service-time meters scraped by the benchmark harness.
#pragma once

#include "sim/time.hpp"
#include "sim/units.hpp"
#include "stats/histogram.hpp"
#include "stats/sketch.hpp"

namespace ibridge::stats {

/// Measures aggregate data volume over a simulated interval.
class ThroughputMeter {
 public:
  void start(sim::SimTime now) {
    start_ = now;
    stop_ = now;
    bytes_ = sim::Bytes::zero();
    running_ = true;
  }
  void add_bytes(sim::Bytes b) { bytes_ += b; }
  void stop(sim::SimTime now) {
    stop_ = now;
    running_ = false;
  }

  /// True between start() and stop().
  bool running() const { return running_; }

  sim::Bytes bytes() const { return bytes_; }

  /// Measured interval.  Zero until stop() has been called — while the
  /// meter is still running (or was never started) there is no defensible
  /// elapsed value, and `stop_ - start_` of default-constructed SimTimes
  /// would be meaningless.
  sim::SimTime elapsed() const {
    return running_ ? sim::SimTime::zero() : stop_ - start_;
  }

  /// MB/s with MB = 10^6 bytes (matching the paper's figures).
  double mbps() const {
    const double secs = elapsed().to_seconds();
    return secs > 0 ? static_cast<double>(bytes_.count()) / 1e6 / secs : 0.0;
  }

 private:
  sim::SimTime start_;
  sim::SimTime stop_;
  sim::Bytes bytes_;
  bool running_ = false;
};

/// Per-request service-time accumulator (Table III replay metric).  Tail
/// latencies come from a bounded QuantileSketch, so per-server p50/p99 are
/// always on at O(1) memory per server regardless of request count.
class ServiceTimeMeter {
 public:
  // The meter sits on the serve path of every request, so its sketch takes
  // the worst-case preallocation: a new latency magnitude discovered mid-run
  // must not reallocate the bucket vector (the zero-allocs-per-request
  // steady-state gate counts that as serve-path churn).
  ServiceTimeMeter() { sketch_.reserve_full(); }

  void add(sim::SimTime t) {
    const double ms = t.to_millis();
    ms_.add(ms);
    sketch_.add(ms);
  }
  double mean_ms() const { return ms_.mean(); }
  double p50_ms() const { return sketch_.percentile(50.0); }
  double p99_ms() const { return sketch_.percentile(99.0); }
  std::uint64_t count() const { return ms_.count(); }
  const Summary& summary() const { return ms_; }
  const QuantileSketch& sketch() const { return sketch_; }

 private:
  Summary ms_;
  QuantileSketch sketch_;
};

}  // namespace ibridge::stats
