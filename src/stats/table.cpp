#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>

namespace ibridge::stats {

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += "| ";
      out += cell;
      out.append(width[c] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < width.size(); ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace ibridge::stats
