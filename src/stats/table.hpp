// Fixed-width console table / CSV emitters used by the benchmark harness to
// print rows in the same shape as the paper's tables and figures.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace ibridge::stats {

/// A simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Convenience: printf-style cell formatting.
  static std::string fmt(const char* f, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
  }
  static std::string fmt(const char* f, long long v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
  }

  std::string to_string() const;
  std::string to_csv() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ibridge::stats
