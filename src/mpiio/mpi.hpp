// A minimal MPI-IO-shaped client library over the simulated PVFS cluster.
//
// The paper's benchmarks are MPI programs using ROMIO's MPI-IO: independent
// reads/writes at explicit offsets plus barriers.  MpiEnvironment runs each
// rank as a simulation coroutine; MpiFile provides read_at/write_at that go
// through the PVFS client (decomposition, tagging, fan-out); barrier() maps
// onto the simulation barrier.  This is the surface mpi-io-test, ior-mpi-io
// and BTIO need — not a general MPI implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>

#include "pvfs/client.hpp"
#include "sim/sync.hpp"

namespace ibridge::mpiio {

class MpiEnvironment;

/// Per-rank context handed to the rank body.
class MpiContext {
 public:
  MpiContext(MpiEnvironment& env, int rank) : env_(env), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;

  /// MPI_Barrier over all ranks of the environment.
  sim::SyncBarrier::Awaiter barrier();

  /// Simulated compute phase.
  sim::Delay compute(sim::SimTime t);

  pvfs::Client& client();
  sim::Simulator& sim();

 private:
  MpiEnvironment& env_;
  int rank_;
};

/// Spawns `nprocs` rank coroutines and tracks their completion.
class MpiEnvironment {
 public:
  MpiEnvironment(sim::Simulator& sim, pvfs::Client& client, int nprocs)
      : sim_(sim), client_(client), nprocs_(nprocs),
        barrier_(sim, nprocs), group_(sim) {}

  using RankBody = std::function<sim::Task<>(MpiContext)>;

  /// Launch all ranks; run the simulator (sim.run()) to execute them.
  void launch(const RankBody& body) {
    for (int r = 0; r < nprocs_; ++r) {
      group_.spawn(body(MpiContext(*this, r)));
    }
  }

  bool finished() const { return group_.all_finished(); }
  int size() const { return nprocs_; }
  sim::Simulator& sim() { return sim_; }
  pvfs::Client& client() { return client_; }
  sim::SyncBarrier& barrier() { return barrier_; }

 private:
  sim::Simulator& sim_;
  pvfs::Client& client_;
  int nprocs_;
  sim::SyncBarrier barrier_;
  sim::TaskGroup group_;
};

inline int MpiContext::size() const { return env_.size(); }
inline sim::SyncBarrier::Awaiter MpiContext::barrier() {
  return env_.barrier().arrive();
}
inline sim::Delay MpiContext::compute(sim::SimTime t) {
  return sim::Delay{env_.sim(), t};
}
inline pvfs::Client& MpiContext::client() { return env_.client(); }
inline sim::Simulator& MpiContext::sim() { return env_.sim(); }

/// MPI_File-flavoured handle: read_at/write_at with explicit offsets.
class MpiFile {
 public:
  MpiFile(pvfs::Client& client, pvfs::FileHandle h)
      : client_(client), handle_(h) {}

  sim::Task<sim::SimTime> read_at(int rank, std::int64_t offset,
                                  std::int64_t length,
                                  std::span<std::byte> data = {}) {
    return client_.read_at(rank, handle_, offset, length, data);
  }
  sim::Task<sim::SimTime> write_at(int rank, std::int64_t offset,
                                   std::int64_t length,
                                   std::span<const std::byte> data = {}) {
    return client_.write_at(rank, handle_, offset, length, data);
  }

  pvfs::FileHandle handle() const { return handle_; }
  std::int64_t size() const { return client_.mds().file(handle_).size; }

 private:
  pvfs::Client& client_;
  pvfs::FileHandle handle_;
};

}  // namespace ibridge::mpiio
