// Two-phase collective I/O (ROMIO-style) and data sieving.
//
// These are the classical MPI-IO middleware answers to unaligned access
// that the paper's related-work section discusses (Thakur, Gropp & Lusk):
//
//   * Collective I/O: when every rank participates in one logical I/O
//     phase, the union of their requests is repartitioned into large
//     stripe-aligned *file domains*, each owned by an aggregator rank.  A
//     shuffle phase moves data between ranks and aggregators over the
//     network; aggregators then issue big aligned file accesses.  Fragments
//     disappear — at the cost of synchronizing all ranks and shipping the
//     data twice.
//   * Data sieving: an independent unaligned read is widened to aligned
//     boundaries; the extra bytes are discarded.  Alignment is bought with
//     wasted transfer.
//
// bench_collective compares both against iBridge, which achieves aligned
// disk access transparently, without synchronization or data movement.
#pragma once

#include <cstdint>
#include <vector>

#include "mpiio/mpi.hpp"
#include "sim/sync.hpp"

namespace ibridge::mpiio {

struct CollectiveConfig {
  /// Aggregator ranks for the two-phase exchange (ROMIO's cb_nodes);
  /// 0 = one aggregator per data server.
  int aggregators = 0;
  /// File-domain chunk handed to one aggregator per round (cb_buffer_size).
  std::int64_t buffer_bytes = 4 << 20;
};

/// Coordinates collective operations for one (environment, file) pair.
/// Every rank of the environment must call write_at_all/read_at_all the
/// same number of times (standard MPI collective semantics).
class CollectiveContext {
 public:
  CollectiveContext(MpiEnvironment& env, MpiFile file,
                    CollectiveConfig cfg = {});

  /// Collective write: rank contributes [offset, offset+length).  Resumes
  /// when the whole exchanged-and-aggregated write round completes.
  sim::Task<> write_at_all(int rank, std::int64_t offset, std::int64_t length);

  /// Collective read: rank receives [offset, offset+length).
  sim::Task<> read_at_all(int rank, std::int64_t offset, std::int64_t length);

  /// Aggregate payload bytes shipped over the network in shuffle phases.
  std::int64_t shuffle_bytes() const { return shuffle_bytes_; }

 private:
  struct Contribution {
    int rank;
    std::int64_t offset, length;
  };

  sim::Task<> run_round(bool write);
  sim::Task<> collect(int rank, std::int64_t offset, std::int64_t length,
                      bool write);

  MpiEnvironment& env_;
  MpiFile file_;
  CollectiveConfig cfg_;
  int aggregators_;

  // Per-round rendezvous state.
  std::vector<Contribution> pending_;
  sim::SyncBarrier entry_;
  sim::SyncBarrier exit_;
  std::int64_t shuffle_bytes_ = 0;
};

/// Data sieving: widen an independent read to `align`-byte boundaries.
/// Returns the request's service time (the widened read's).
sim::Task<sim::SimTime> read_at_sieved(MpiFile& file, int rank,
                                       std::int64_t offset,
                                       std::int64_t length,
                                       std::int64_t align);

}  // namespace ibridge::mpiio
