#include "mpiio/collective.hpp"

#include <algorithm>
#include <cassert>

namespace ibridge::mpiio {

CollectiveContext::CollectiveContext(MpiEnvironment& env, MpiFile file,
                                     CollectiveConfig cfg)
    : env_(env),
      file_(file),
      cfg_(cfg),
      aggregators_(cfg.aggregators > 0
                       ? std::min(cfg.aggregators, env.size())
                       : std::min(env.client().mds().server_count(),
                                  env.size())),
      entry_(env.sim(), env.size()),
      exit_(env.sim(), env.size()) {}

sim::Task<> CollectiveContext::write_at_all(int rank, std::int64_t offset,
                                            std::int64_t length) {
  return collect(rank, offset, length, /*write=*/true);
}

sim::Task<> CollectiveContext::read_at_all(int rank, std::int64_t offset,
                                           std::int64_t length) {
  return collect(rank, offset, length, /*write=*/false);
}

sim::Task<> CollectiveContext::collect(int rank, std::int64_t offset,
                                       std::int64_t length, bool write) {
  pending_.push_back({rank, offset, length});
  const bool last = static_cast<int>(pending_.size()) == env_.size();
  if (last) {
    // The last arriver performs the exchange before releasing the others
    // (they are all parked at the entry barrier).
    co_await run_round(write);
  }
  co_await entry_.arrive();
  // All ranks resume once the aggregated I/O finished; the exit barrier
  // keeps rounds from overlapping when ranks immediately start the next
  // collective call.
  co_await exit_.arrive();
}

sim::Task<> CollectiveContext::run_round(bool write) {
  auto contributions = std::move(pending_);
  pending_.clear();

  // The aggregate access region, partitioned into stripe-aligned file
  // domains dealt round-robin to aggregator ranks.
  std::int64_t lo = contributions.front().offset;
  std::int64_t hi = lo;
  for (const auto& c : contributions) {
    lo = std::min(lo, c.offset);
    hi = std::max(hi, c.offset + c.length);
  }
  const std::int64_t unit =
      env_.client().mds().file(file_.handle()).layout.unit().count();
  const std::int64_t domain =
      std::max<std::int64_t>(unit, (cfg_.buffer_bytes / unit) * unit);
  lo = (lo / unit) * unit;

  // Shuffle accounting: every byte a rank contributes that lands in an
  // aggregator's domain crosses the network once (unless the rank IS the
  // aggregator; we charge uniformly — intra-node copies are negligible but
  // so is their probability at scale).
  pvfs::Client& client = env_.client();
  struct DomainIo {
    int aggregator;
    std::int64_t offset, length;
  };
  std::vector<DomainIo> ios;
  int next_aggregator = 0;
  for (std::int64_t d = lo; d < hi; d += domain) {
    const std::int64_t dlen = std::min(domain, hi - d);
    // Bytes of this domain actually covered by contributions.
    std::int64_t covered = 0;
    for (const auto& c : contributions) {
      const std::int64_t o = std::max(d, c.offset);
      const std::int64_t e = std::min(d + dlen, c.offset + c.length);
      if (e > o) covered += e - o;
    }
    if (covered == 0) continue;
    ios.push_back({next_aggregator, d, dlen});
    next_aggregator = (next_aggregator + 1) % aggregators_;
    shuffle_bytes_ += covered;
  }

  // Phase 1 (writes) / phase 2 (reads): the shuffle.  Model the exchange as
  // pairwise transfers rank->aggregator (or back), all concurrent.
  auto shuffle = [&]() -> sim::Task<> {
    sim::JoinSet xfers(env_.sim());
    for (const auto& io : ios) {
      for (const auto& c : contributions) {
        const std::int64_t o = std::max(io.offset, c.offset);
        const std::int64_t e =
            std::min(io.offset + io.length, c.offset + c.length);
        if (e <= o) continue;
        net::Nic& a = client.rank_nic(c.rank);
        net::Nic& b = client.rank_nic(io.aggregator);
        xfers.add(write ? client.network().transfer(a, b, e - o)
                        : client.network().transfer(b, a, e - o));
      }
    }
    co_await xfers.join();
  };

  // Aggregated file accesses: big aligned requests from aggregator ranks.
  auto file_io = [&]() -> sim::Task<> {
    sim::JoinSet reqs(env_.sim());
    for (const auto& io : ios) {
      if (write) {
        reqs.add([](MpiFile f, DomainIo d) -> sim::Task<> {
          co_await f.write_at(d.aggregator, d.offset, d.length);
        }(file_, io));
      } else {
        reqs.add([](MpiFile f, DomainIo d) -> sim::Task<> {
          co_await f.read_at(d.aggregator, d.offset, d.length);
        }(file_, io));
      }
    }
    co_await reqs.join();
  };

  if (write) {
    co_await shuffle();
    co_await file_io();
  } else {
    co_await file_io();
    co_await shuffle();
  }
}

sim::Task<sim::SimTime> read_at_sieved(MpiFile& file, int rank,
                                       std::int64_t offset,
                                       std::int64_t length,
                                       std::int64_t align) {
  assert(align > 0);
  const std::int64_t lo = (offset / align) * align;
  const std::int64_t hi = ((offset + length + align - 1) / align) * align;
  co_return co_await file.read_at(rank, lo, hi - lo);
}

}  // namespace ibridge::mpiio
