// ibridge-tracegen — synthesize an I/O trace in the text format.
//
//   ibridge-tracegen <profile> <requests> [file-bytes] [seed] > trace.txt
//
// Profiles: alegra-2744, alegra-5832, cth, s3d, or
//   custom:<unaligned%>,<random%>,<large-KB>,<small-KB>,<write%>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "exp/cli.hpp"
#include "workloads/trace.hpp"

using namespace ibridge::workloads;

namespace {

bool parse_custom(const std::string& spec, TraceProfile& out) {
  double u, r, w;
  long large_kb, small_kb;
  if (std::sscanf(spec.c_str(), "%lf,%lf,%ld,%ld,%lf", &u, &r, &large_kb,
                  &small_kb, &w) != 5) {
    return false;
  }
  out = TraceProfile{"custom", u / 100.0, r / 100.0, large_kb * 1024,
                     small_kb * 1024, w / 100.0};
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: ibridge-tracegen <profile> <requests> [file-bytes] [seed]\n"
      "  profiles: alegra-2744 | alegra-5832 | cth | s3d |\n"
      "            custom:<unaligned%%>,<random%%>,<largeKB>,<smallKB>,"
      "<write%%>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string name = argv[1];
  TraceProfile profile;
  if (name == "alegra-2744") {
    profile = alegra_2744_profile();
  } else if (name == "alegra-5832") {
    profile = alegra_5832_profile();
  } else if (name == "cth") {
    profile = cth_profile();
  } else if (name == "s3d") {
    profile = s3d_profile();
  } else if (name.rfind("custom:", 0) == 0 &&
             parse_custom(name.substr(7), profile)) {
    // parsed
  } else {
    return usage();
  }

  const auto n = static_cast<std::size_t>(ibridge::exp::require_int(
      "ibridge-tracegen", "requests", argv[2], 1, 100000000));
  const std::int64_t file_bytes =
      argc > 3 ? ibridge::exp::require_int("ibridge-tracegen", "file-bytes",
                                           argv[3], 1,
                                           std::int64_t{1} << 50)
               : 10LL * 1000 * 1000 * 1000;
  const std::uint64_t seed =
      argc > 4 ? ibridge::exp::require_u64("ibridge-tracegen", "seed", argv[4])
               : 1;

  TraceSynthesizer synth(profile);
  write_trace(std::cout, synth.generate(n, file_bytes, seed));
  return 0;
}
