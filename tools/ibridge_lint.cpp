// ibridge-lint — the project's static analyzer.
//
//   ibridge-lint <repo-root>     lint the whole tree (the ctest -L lint job)
//   ibridge-lint --list-rules    print the rule registry
//
// Exit status is the number of diagnostics, clamped to 125, so any finding
// fails the build.  See docs/LINT.md for the rules and escape hatches.
#include <algorithm>
#include <cstdio>
#include <string>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  const std::string arg = argc > 1 ? argv[1] : ".";
  if (arg == "--list-rules") {
    for (const auto& r : ibridge::lint::rules()) {
      std::printf("%-22s %s\n", r.id.c_str(), r.summary.c_str());
    }
    return 0;
  }
  if (arg == "--help" || arg == "-h") {
    std::printf("usage: ibridge-lint [<repo-root>|--list-rules]\n");
    return 0;
  }
  const auto diags = ibridge::lint::lint_tree(arg);
  for (const auto& d : diags) {
    std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (diags.empty()) {
    std::printf("ibridge-lint: clean\n");
    return 0;
  }
  std::printf("ibridge-lint: %zu diagnostic(s)\n", diags.size());
  return static_cast<int>(std::min<std::size_t>(diags.size(), 125));
}
