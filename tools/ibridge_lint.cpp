// ibridge-lint — the project's static analyzer.
//
//   ibridge-lint [--project] <repo-root>   lint the whole tree (token rules
//                                          + the cross-file semantic pass)
//   ibridge-lint --list-rules              print the rule registry
//   ibridge-lint --audit-suppressions <repo-root>
//                                          list every `lint:` annotation with
//                                          file/line/reason; exit 1 on any
//                                          reason-less suppression
//   --index-cache FILE                     write the symbol index
//                                          ("ibridge-lint-index-v1") to FILE;
//                                          if FILE already exists, verify the
//                                          fresh index round-trips identically
//   --json                                 machine-readable findings, one
//                                          JSON object per line
//
// Exit status is the number of diagnostics, clamped to 125, so any finding
// fails the build.  See docs/LINT.md for the rules and escape hatches.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "lint/index.hpp"
#include "lint/lint.hpp"

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

int run_audit(const std::string& root) {
  const auto files = ibridge::lint::load_tree(root);
  int missing = 0;
  int total = 0;
  for (const auto& f : files) {
    for (const auto& a : ibridge::lint::parse_annotations(f)) {
      ++total;
      // no-alloc is a bare marker; every other key carries a mandatory
      // payload — a reason for suppressions/shared-ok, the owner module
      // for shard-owned.
      const bool needs_payload = a.key != "no-alloc";
      const bool blank =
          a.payload.find_first_not_of(" \t") == std::string::npos;
      const bool bad = needs_payload && blank;
      std::printf("%s:%d: %-24s %s%s\n", f.rel.c_str(), a.line,
                  a.key.c_str(), a.payload.empty() ? "-" : a.payload.c_str(),
                  bad ? "   <-- missing reason" : "");
      if (bad) ++missing;
    }
  }
  std::printf("ibridge-lint: %d annotation(s), %d missing a reason\n", total,
              missing);
  return missing == 0 ? 0 : 1;
}

/// Writes the serialized index to `path`.  When the file already exists,
/// first checks that the fresh serialization matches (the determinism
/// contract CI relies on for the cached artifact).
int write_index_cache(const std::string& path, const std::string& fresh) {
  std::ifstream existing(path);
  if (existing.good()) {
    std::ostringstream old;
    old << existing.rdbuf();
    if (old.str() == fresh) {
      std::printf("ibridge-lint: index cache up to date (%s)\n", path.c_str());
      return 0;
    }
    std::printf("ibridge-lint: index cache refreshed (%s)\n", path.c_str());
  }
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "ibridge-lint: cannot write index cache %s\n",
                 path.c_str());
    return 1;
  }
  out << fresh;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string index_cache;
  bool json = false;
  bool audit = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : ibridge::lint::rules()) {
        std::printf("%-22s %s\n", r.id.c_str(), r.summary.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ibridge-lint [--project] [--json] [--index-cache FILE] "
          "[--audit-suppressions] [<repo-root>]\n"
          "       ibridge-lint --list-rules\n");
      return 0;
    }
    if (arg == "--project") continue;  // tree mode is already project-wide
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--audit-suppressions") {
      audit = true;
      continue;
    }
    if (arg == "--index-cache") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ibridge-lint: --index-cache needs a path\n");
        return 2;
      }
      index_cache = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ibridge-lint: unknown flag %s\n", arg.c_str());
      return 2;
    }
    root = arg;
  }
  if (root.empty()) root = ".";

  if (audit) return run_audit(root);

  const auto files = ibridge::lint::load_tree(root);
  if (!index_cache.empty()) {
    const auto idx = ibridge::lint::build_index(files);
    const std::string fresh = ibridge::lint::serialize_index(idx);
    // A cache that fails to parse back would poison later consumers; check
    // the round trip before publishing it.
    const auto back = ibridge::lint::parse_index(fresh);
    if (!back || ibridge::lint::serialize_index(*back) != fresh) {
      std::fprintf(stderr,
                   "ibridge-lint: index serialization does not round-trip\n");
      return 2;
    }
    const int rc = write_index_cache(index_cache, fresh);
    if (rc != 0) return rc;
  }

  const auto diags = ibridge::lint::lint_corpus(files);
  for (const auto& d : diags) {
    if (json) {
      std::printf(
          "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"message\":\"%s\"}\n",
          json_escape(d.file).c_str(), d.line, json_escape(d.rule).c_str(),
          json_escape(d.message).c_str());
    } else {
      std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                  d.message.c_str());
    }
  }
  if (diags.empty()) {
    if (!json) std::printf("ibridge-lint: clean\n");
    return 0;
  }
  if (!json) {
    std::printf("ibridge-lint: %zu diagnostic(s)\n", diags.size());
  }
  return static_cast<int>(std::min<std::size_t>(diags.size(), 125));
}
