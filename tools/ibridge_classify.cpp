// ibridge-classify — Table I statistics for a text-format trace.
//
//   ibridge-classify [stripe-unit-KB] [random-threshold-KB] < trace.txt
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "exp/cli.hpp"
#include "workloads/trace.hpp"

using namespace ibridge::workloads;

int main(int argc, char** argv) {
  const std::int64_t unit_kb =
      argc > 1 ? ibridge::exp::require_int("ibridge-classify", "stripe-unit-KB",
                                           argv[1], 1, 1 << 20)
               : 64;
  const std::int64_t rand_kb =
      argc > 2 ? ibridge::exp::require_int("ibridge-classify",
                                           "random-threshold-KB", argv[2], 1,
                                           1 << 20)
               : 20;

  Trace trace;
  try {
    trace = read_trace(std::cin);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (trace.empty()) {
    std::fprintf(stderr, "empty trace\n");
    return 1;
  }

  const AccessClassifier cls(unit_kb * 1024, rand_kb * 1024);
  const AccessStats s = cls.classify(trace);
  std::printf("requests      : %llu\n",
              static_cast<unsigned long long>(s.requests));
  std::printf("unaligned     : %5.1f %%   (> %lld KB and not aligned)\n",
              s.unaligned_pct, static_cast<long long>(unit_kb));
  std::printf("random        : %5.1f %%   (< %lld KB)\n", s.random_pct,
              static_cast<long long>(rand_kb));
  std::printf("total         : %5.1f %%\n", s.total_pct);
  std::printf("avg request   : %5.1f KB\n", s.avg_size / 1024.0);
  return 0;
}
