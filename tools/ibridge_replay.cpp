// ibridge-replay — replay a text-format trace through a simulated cluster.
//
//   ibridge-replay <stock|ibridge|ssd-only> [servers] [runs] < trace.txt
//
// Prints the Table III metric (average request service time) per run;
// repeated runs on the same cluster show iBridge's warm-cache behaviour.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "cluster/cluster.hpp"
#include "exp/cli.hpp"
#include "workloads/trace.hpp"

using namespace ibridge;
using namespace ibridge::workloads;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: ibridge-replay <stock|ibridge|ssd-only> [servers] "
                 "[runs] < trace.txt\n");
    return 2;
  }
  const std::string mode = argv[1];
  cluster::ClusterConfig cc;
  if (mode == "stock") {
    cc = cluster::ClusterConfig::stock();
  } else if (mode == "ibridge") {
    cc = cluster::ClusterConfig::with_ibridge();
  } else if (mode == "ssd-only") {
    cc = cluster::ClusterConfig::ssd_only();
  } else {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  if (argc > 2) {
    cc.data_servers = static_cast<int>(
        exp::require_int("ibridge-replay", "servers", argv[2], 1, 1024));
  }
  const int runs =
      argc > 3 ? static_cast<int>(exp::require_int("ibridge-replay", "runs",
                                                   argv[3], 1, 1000000))
               : 1;

  Trace trace;
  try {
    trace = read_trace(std::cin);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (trace.empty()) {
    std::fprintf(stderr, "empty trace\n");
    return 1;
  }

  std::int64_t max_end = 0;
  for (const auto& r : trace) max_end = std::max(max_end, r.offset + r.size);

  cluster::Cluster c(cc);
  ReplayConfig rc;
  rc.file_bytes = max_end;
  std::printf("%s, %d servers, %zu records, %.1f MB file\n", mode.c_str(),
              cc.data_servers, trace.size(),
              static_cast<double>(max_end) / 1e6);
  for (int run = 0; run < runs; ++run) {
    const auto r = replay_trace(c, trace, rc);
    std::printf("run %d: avg service %7.2f ms   (%.2f s total, %.1f MB/s)\n",
                run, r.avg_request_ms, r.elapsed.to_seconds(),
                static_cast<double>(r.bytes) / 1e6 /
                    r.elapsed.to_seconds());
  }
  return 0;
}
