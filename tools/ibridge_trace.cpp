// ibridge-trace — run an unaligned parallel workload under full request
// tracing and export the results.
//
//   ibridge-trace [stock|ibridge|ssd-only] [options]
//
//     --requests N     synchronous requests per rank          (default 8)
//     --k N            full 64 KB stripe units per request    (default 4)
//     --no-fragment    drop the trailing 1 KB (aligned control run)
//     --out FILE       Chrome trace-event JSON                (default trace.json)
//     --csv FILE       metrics time-series CSV                (off by default)
//     --metrics FILE   end-of-run metrics CSV                 (off by default)
//     --top N          rows in the straggler report           (default 10)
//     --interval-ms M  metrics sampling cadence, sim time     (default 50)
//     --flight         bounded flight-recorder retention instead of
//                      full tracing (keeps the slowest requests plus a
//                      deterministic 1-in-K sample; same exporters)
//
// The workload reproduces the Figure 3 magnification scenario: a 16-process
// group reads k*64KB+1KB requests (the 1 KB fragment lands on server k)
// while a 4-process group hammers server k with random 64 KB reads.  The
// straggler report then shows each request's per-layer latency breakdown and
// magnification factor (slowest / median sibling sub-request); with the
// fragment enabled, the fragment sub-requests dominate the stragglers.
//
// Open the JSON in https://ui.perfetto.dev or chrome://tracing.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>

#include "cluster/cluster.hpp"
#include "exp/cli.hpp"
#include "mpiio/mpi.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

using namespace ibridge;

namespace {

constexpr std::int64_t kUnit = 64 * 1024;
constexpr std::int64_t kFileBytes = 2LL << 30;

sim::Task<> requester(mpiio::MpiContext ctx, mpiio::MpiFile file,
                      std::int64_t req_size, std::int64_t iters,
                      std::int64_t region) {
  for (std::int64_t k = 0; k < iters; ++k) {
    const std::int64_t off =
        (k * ctx.size() + ctx.rank()) * region % kFileBytes;
    co_await file.read_at(ctx.rank(), off, req_size);
    co_await ctx.barrier();
  }
}

sim::Task<> interferer(mpiio::MpiContext ctx, mpiio::MpiFile file,
                       int target_server, int servers, std::int64_t iters,
                       sim::Rng rng) {
  for (std::int64_t k = 0; k < iters; ++k) {
    const std::int64_t stripe = static_cast<std::int64_t>(
        rng.below(10'000) * static_cast<std::uint64_t>(servers) +
        static_cast<std::uint64_t>(target_server));
    co_await file.read_at(ctx.rank(), stripe * kUnit, kUnit);
  }
}

bool write_file(const std::string& path, const char* what,
                const std::function<void(std::ostream&)>& body) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for %s\n", path.c_str(), what);
    return false;
  }
  body(os);
  std::printf("wrote %s: %s\n", what, path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "stock";
  std::string out = "trace.json";
  std::string csv, metrics_out;
  std::int64_t requests = 8;
  int k = 4;
  bool fragment = true;
  bool flight = false;
  std::size_t top = 10;
  std::int64_t interval_ms = 50;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "stock" || a == "ibridge" || a == "ssd-only") {
      mode = a;
    } else if (a == "--requests") {
      requests = exp::require_int("ibridge-trace", "--requests", next(), 1,
                                  100000000);
    } else if (a == "--k") {
      k = static_cast<int>(
          exp::require_int("ibridge-trace", "--k", next(), 1, 7));
    } else if (a == "--no-fragment") {
      fragment = false;
    } else if (a == "--flight") {
      flight = true;
    } else if (a == "--out") {
      out = next();
    } else if (a == "--csv") {
      csv = next();
    } else if (a == "--metrics") {
      metrics_out = next();
    } else if (a == "--top") {
      top = static_cast<std::size_t>(
          exp::require_int("ibridge-trace", "--top", next(), 0, 1000000));
    } else if (a == "--interval-ms") {
      interval_ms = exp::require_int("ibridge-trace", "--interval-ms", next(),
                                     1, 1000000);
    } else {
      std::fprintf(stderr,
                   "usage: ibridge-trace [stock|ibridge|ssd-only] "
                   "[--requests N] [--k N] [--no-fragment] [--flight] "
                   "[--out FILE] [--csv FILE] [--metrics FILE] [--top N] "
                   "[--interval-ms M]\n");
      return 2;
    }
  }
  if (requests <= 0 || k <= 0 || k > 7 || interval_ms <= 0) {
    std::fprintf(stderr, "invalid --requests/--k/--interval-ms\n");
    return 2;
  }

  cluster::ClusterConfig cc;
  if (mode == "ibridge") {
    cc = cluster::ClusterConfig::with_ibridge();
  } else if (mode == "ssd-only") {
    cc = cluster::ClusterConfig::ssd_only();
  } else {
    cc = cluster::ClusterConfig::stock();
  }

  cluster::Cluster c(cc);
  obs::TraceSession session(c.sim());
  if (flight) session.enable_flight_recorder(obs::FlightConfig{});
  c.set_trace(&session);
  obs::TimeSeries series;
  c.start_metrics_sampler(sim::SimTime::millis(interval_ms), &series);

  auto fh = c.create_file("data", kFileBytes);
  mpiio::MpiFile file(c.client(), fh);

  const std::int64_t req_size =
      static_cast<std::int64_t>(k) * kUnit + (fragment ? 1024 : 0);
  const std::int64_t region = cc.data_servers * kUnit;
  std::printf("ibridge-trace: %s, %d servers, 16 ranks x %lld requests of "
              "%lld bytes%s\n",
              mode.c_str(), cc.data_servers, static_cast<long long>(requests),
              static_cast<long long>(req_size),
              fragment ? " (1 KB fragment on server k)" : "");

  mpiio::MpiEnvironment group(c.sim(), c.client(), 16);
  mpiio::MpiEnvironment noise(c.sim(), c.client(), 4);
  group.launch([&](mpiio::MpiContext ctx) {
    return requester(ctx, file, req_size, requests, region);
  });
  sim::Rng seed_gen(77);
  noise.launch([&](mpiio::MpiContext ctx) {
    return interferer(ctx, file, /*target_server=*/k % cc.data_servers,
                      cc.data_servers, requests * 2, seed_gen.fork());
  });
  c.sim().run_while_pending([&] { return group.finished(); });
  c.drain();

  obs::write_straggler_report(std::cout, session, top);
  if (flight) {
    std::printf(
        "\nflight recorder: %llu spans recorded, %zu requests retained of "
        "%llu traced\n",
        static_cast<unsigned long long>(session.spans_recorded()),
        session.requests_retained(),
        static_cast<unsigned long long>(session.requests_traced()));
  } else {
    std::printf("\nspans recorded: %zu over %llu traced requests\n",
                session.spans().size(),
                static_cast<unsigned long long>(session.requests_traced()));
  }

  if (!write_file(out, "chrome trace", [&](std::ostream& os) {
        obs::write_chrome_trace(os, session);
      })) {
    return 1;
  }
  if (!csv.empty() &&
      !write_file(csv, "metrics time series",
                  [&](std::ostream& os) { series.write_csv(os); })) {
    return 1;
  }
  if (!metrics_out.empty()) {
    obs::MetricsRegistry reg;
    c.collect_metrics(reg);
    if (!write_file(metrics_out, "metrics",
                    [&](std::ostream& os) { reg.write_csv(os); })) {
      return 1;
    }
  }
  return 0;
}
