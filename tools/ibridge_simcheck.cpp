// ibridge-simcheck — standalone SimCheck fuzz runner.
//
//   ibridge-simcheck [--iters N] [--seed S] [--jobs J] [--shards K]
//                    [--group-size G] [--adaptive US]
//                    [--determinism] [--faults healthy|gc|crash|mixed]
//                    [--digests FILE] [--out FILE]
//
// Runs N generated cases (seeds S, S+1, ...) through the differential
// checker (disk-only vs iBridge vs SSD-only on fresh clusters, with the
// invariant oracle attached to the iBridge run).  With --determinism each
// case is additionally executed twice to confirm bit-identical replay.
//
// --faults attaches a seed-derived fault schedule (fault::make_scenario) to
// every case: GC pauses and read variability ("gc"), a data-server
// crash/restart mid-write-back ("crash"), or both ("mixed").  The same
// schedule hits all three policies, so payload equivalence — and, with
// --digests, byte-identical replay including the fault digest — is enforced
// under injected failures too.
//
// --shards K runs every cluster on the sharded parallel simulation core
// with up to K worker threads (0, the default, keeps the classic
// single-queue core).  The sharded core is deterministic by construction —
// the window schedule and barrier merge order never depend on the worker
// count — so the --digests file must be byte-identical across every K >= 1,
// healthy and under --faults alike, which is exactly what the CI
// shard-digest-identity job asserts.
//
// --group-size G maps G data servers onto each logical shard and
// --adaptive US caps the adaptive barrier window at US microseconds (the
// scale-campaign configuration).  Both are part of the *configuration*: at
// any fixed (G, US) the digests stay byte-identical across every K >= 1,
// so CI repeats the identity sweep with them set.  They only apply when
// --shards K >= 1.
//
// --jobs J fans the independent cases over an exp::Runner thread pool; each
// job builds its own clusters, so the per-seed results — and the --digests
// file — are byte-identical at every J (the parallel-determinism acceptance
// criterion; tests/test_exp.cpp holds the corresponding regression test).
// --digests FILE records one line per passing seed with the payload/image
// digests (equal across policies by construction) and the per-policy stats
// digests, for cross-run comparison with `diff`.
//
// On the first failure the trace is minimized with the delta-debugging
// shrinker (serially — shrinking is a sequential search) and written in the
// one-record-per-line text format, so the shrunk repro replays directly:
//
//   ibridge-replay ibridge <servers> < simcheck-fail-<seed>.trace
//
// Exit status: 0 when every case passes, 1 on a (shrunk) failure, 2 on
// usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "check/generator.hpp"
#include "exp/cli.hpp"
#include "exp/runner.hpp"
#include "fault/schedule.hpp"
#include "sim/time.hpp"
#include "workloads/trace.hpp"

using namespace ibridge;
using namespace ibridge::check;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ibridge-simcheck [--iters N] [--seed S] [--jobs J] "
               "[--shards K] [--group-size G] [--adaptive US] "
               "[--determinism] [--faults healthy|gc|crash|mixed] "
               "[--digests FILE] [--out FILE]\n");
  return 2;
}

/// Derive and attach the per-case schedule (no-op for kHealthy, keeping
/// healthy runs byte-identical to pre-fault builds).
void apply_faults(FuzzCase& c, fault::Scenario scenario) {
  if (scenario == fault::Scenario::kHealthy) return;
  c.faults = fault::make_scenario(scenario, c.base.data_servers, c.seed,
                                  sim::SimTime::millis(60));
}

/// Everything one fuzz iteration produces, committed in seed order.
struct CaseResult {
  std::uint64_t seed = 0;
  std::string failure;
  DiffReport d;
};

}  // namespace

int main(int argc, char** argv) {
  int iters = 100;
  std::uint64_t seed0 = 1;
  int jobs = 1;
  int shards = 0;
  int group_size = 1;
  double adaptive_us = 0.0;
  bool determinism = false;
  fault::Scenario scenario = fault::Scenario::kHealthy;
  std::string out;
  std::string digests_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = static_cast<int>(
          exp::require_int("ibridge-simcheck", "--iters", argv[++i], 1,
                           1000000));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed0 = exp::require_u64("ibridge-simcheck", "--seed", argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<int>(
          exp::require_int("ibridge-simcheck", "--jobs", argv[++i], 1, 256));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<int>(
          exp::require_int("ibridge-simcheck", "--shards", argv[++i], 0, 64));
    } else if (std::strcmp(argv[i], "--group-size") == 0 && i + 1 < argc) {
      group_size = static_cast<int>(exp::require_int(
          "ibridge-simcheck", "--group-size", argv[++i], 1, 4096));
    } else if (std::strcmp(argv[i], "--adaptive") == 0 && i + 1 < argc) {
      adaptive_us = static_cast<double>(exp::require_int(
          "ibridge-simcheck", "--adaptive", argv[++i], 0, 1000000));
    } else if (std::strcmp(argv[i], "--determinism") == 0) {
      determinism = true;
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      const char* mode = argv[++i];
      if (std::strcmp(mode, "healthy") == 0) {
        scenario = fault::Scenario::kHealthy;
      } else if (std::strcmp(mode, "gc") == 0) {
        scenario = fault::Scenario::kGcInterference;
      } else if (std::strcmp(mode, "crash") == 0) {
        scenario = fault::Scenario::kCrashRestart;
      } else if (std::strcmp(mode, "mixed") == 0) {
        scenario = fault::Scenario::kMixed;
      } else {
        std::fprintf(stderr, "ibridge-simcheck: unknown --faults mode '%s'\n",
                     mode);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--digests") == 0 && i + 1 < argc) {
      digests_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      return usage();
    }
  }

  // Fan the independent cases over the pool; slot i is seed0 + i regardless
  // of which worker runs it or in what order the workers finish.
  exp::Runner runner(jobs);
  const std::vector<CaseResult> results =
      runner.map<CaseResult>(iters, [&](int i) {
        CaseResult r;
        r.seed = seed0 + static_cast<std::uint64_t>(i);
        FuzzCase c = generate_case(r.seed);
        c.base.shards = shards;
        c.base.shard_group_size = group_size;
        c.base.adaptive_window_us = adaptive_us;
        apply_faults(c, scenario);
        r.d = run_differential(c);
        r.failure = r.d.failure;
        if (r.failure.empty() && determinism) {
          r.failure = check_determinism(c).failure;
        }
        return r;
      });

  // Commit in submission order: output (and the digest file) is identical
  // to a --jobs 1 run.
  std::string digest_lines;
  std::uint64_t requests = 0;
  double worst_gap = 0.0;
  for (int i = 0; i < iters; ++i) {
    const CaseResult& r = results[static_cast<std::size_t>(i)];
    if (r.failure.empty()) {
      requests += r.d.ibridge.requests;
      worst_gap = std::max(worst_gap, r.d.max_rel_time_gap);
      if (!digests_path.empty()) {
        char line[320];
        int n = std::snprintf(
            line, sizeof(line),
            "seed=%llu payload=%016llx image=%016llx "
            "stats.disk=%016llx stats.ibridge=%016llx "
            "stats.ssd=%016llx",
            static_cast<unsigned long long>(r.seed),
            static_cast<unsigned long long>(r.d.ibridge.payload_digest),
            static_cast<unsigned long long>(r.d.ibridge.image_digest),
            static_cast<unsigned long long>(r.d.disk.stats_digest),
            static_cast<unsigned long long>(r.d.ibridge.stats_digest),
            static_cast<unsigned long long>(r.d.ssd.stats_digest));
        if (r.d.ibridge.faulted && n > 0 &&
            static_cast<std::size_t>(n) < sizeof(line)) {
          std::snprintf(line + n, sizeof(line) - static_cast<std::size_t>(n),
                        " fault=%016llx",
                        static_cast<unsigned long long>(
                            r.d.ibridge.fault_digest));
        }
        digest_lines += line;
        digest_lines += '\n';
      }
      if ((i + 1) % 10 == 0 || i + 1 == iters) {
        std::printf("[%d/%d] ok (last seed %llu)\n", i + 1, iters,
                    static_cast<unsigned long long>(r.seed));
        std::fflush(stdout);
      }
      continue;
    }

    std::printf("seed %llu FAILED: %s\n",
                static_cast<unsigned long long>(r.seed), r.failure.c_str());
    FuzzCase c = generate_case(r.seed);
    c.base.shards = shards;
    c.base.shard_group_size = group_size;
    c.base.adaptive_window_us = adaptive_us;
    apply_faults(c, scenario);
    std::printf("shrinking (%zu records)...\n", c.trace.size());
    auto fails = [&](const workloads::Trace& t) {
      FuzzCase cand = c;
      cand.trace = t;
      if (!run_differential(cand).ok()) return true;
      return determinism && !check_determinism(cand).ok();
    };
    ShrinkResult s = shrink(c.trace, fails);
    std::printf("shrunk to %zu records in %zu evaluations\n", s.trace.size(),
                s.evaluations);

    const std::string path =
        out.empty() ? "simcheck-fail-" + std::to_string(r.seed) + ".trace"
                    : out;
    std::ofstream os(path);
    workloads::write_trace(os, s.trace);
    std::printf("wrote %s — replay with:\n  ibridge-replay ibridge %d < %s\n",
                path.c_str(), c.base.data_servers, path.c_str());
    return 1;
  }

  if (!digests_path.empty()) {
    std::ofstream os(digests_path);
    os << digest_lines;
    if (!os) {
      std::fprintf(stderr, "ibridge-simcheck: cannot write %s\n",
                   digests_path.c_str());
      return 2;
    }
  }

  std::printf("%d cases passed (%llu iBridge requests, max policy timing "
              "divergence %.2fx)\n",
              iters, static_cast<unsigned long long>(requests),
              1.0 + worst_gap);
  return 0;
}
