// ibridge-simcheck — standalone SimCheck fuzz runner.
//
//   ibridge-simcheck [--iters N] [--seed S] [--determinism] [--out FILE]
//
// Runs N generated cases (seeds S, S+1, ...) through the differential
// checker (disk-only vs iBridge vs SSD-only on fresh clusters, with the
// invariant oracle attached to the iBridge run).  With --determinism each
// case is additionally executed twice to confirm bit-identical replay.
//
// On the first failure the trace is minimized with the delta-debugging
// shrinker and written in the one-record-per-line text format, so the
// shrunk repro replays directly:
//
//   ibridge-replay ibridge <servers> < simcheck-fail-<seed>.trace
//
// Exit status: 0 when every case passes, 1 on a (shrunk) failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "check/differential.hpp"
#include "check/generator.hpp"
#include "workloads/trace.hpp"

using namespace ibridge;
using namespace ibridge::check;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ibridge-simcheck [--iters N] [--seed S] "
               "[--determinism] [--out FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 100;
  std::uint64_t seed0 = 1;
  bool determinism = false;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed0 = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--determinism") == 0) {
      determinism = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      return usage();
    }
  }
  if (iters <= 0) return usage();

  std::uint64_t requests = 0;
  double worst_gap = 0.0;
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(i);
    FuzzCase c = generate_case(seed);
    DiffReport d = run_differential(c);
    std::string failure = d.failure;
    if (failure.empty() && determinism) {
      DeterminismReport det = check_determinism(c);
      failure = det.failure;
    }
    if (failure.empty()) {
      requests += d.ibridge.requests;
      worst_gap = std::max(worst_gap, d.max_rel_time_gap);
      if ((i + 1) % 10 == 0 || i + 1 == iters) {
        std::printf("[%d/%d] ok (last seed %llu)\n", i + 1, iters,
                    static_cast<unsigned long long>(seed));
        std::fflush(stdout);
      }
      continue;
    }

    std::printf("seed %llu FAILED: %s\n",
                static_cast<unsigned long long>(seed), failure.c_str());
    std::printf("shrinking (%zu records)...\n", c.trace.size());
    auto fails = [&](const workloads::Trace& t) {
      FuzzCase cand = c;
      cand.trace = t;
      if (!run_differential(cand).ok()) return true;
      return determinism && !check_determinism(cand).ok();
    };
    ShrinkResult s = shrink(c.trace, fails);
    std::printf("shrunk to %zu records in %zu evaluations\n", s.trace.size(),
                s.evaluations);

    const std::string path =
        out.empty() ? "simcheck-fail-" + std::to_string(seed) + ".trace" : out;
    std::ofstream os(path);
    workloads::write_trace(os, s.trace);
    std::printf("wrote %s — replay with:\n  ibridge-replay ibridge %d < %s\n",
                path.c_str(), c.base.data_servers, path.c_str());
    return 1;
  }

  std::printf("%d cases passed (%llu iBridge requests, max policy timing "
              "divergence %.2fx)\n",
              iters, static_cast<unsigned long long>(requests),
              1.0 + worst_gap);
  return 0;
}
