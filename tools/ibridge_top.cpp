// ibridge-top — live progress view of a simulated cluster run.
//
//   ibridge-top [stock|ibridge|ssd-only] [options]
//
//     --requests N     synchronous requests per rank          (default 32)
//     --k N            full 64 KB stripe units per request    (default 4)
//     --no-fragment    drop the trailing 1 KB (aligned control run)
//     --interval-ms M  snapshot cadence, simulated time       (default 200)
//     --wall           also attribute host CPU per subsystem
//
// Runs the Figure 3 magnification workload (same shape as ibridge-trace,
// untraced) with the sim-core profiler attached and prints a top-like
// snapshot every simulated interval: event throughput, event-queue depth,
// and a per-server table with served bytes and the sketch-backed service
// p50/p99 — the always-on tail latencies that cost O(1) memory per server.
// A final breakdown attributes the run's simulated (and, with --wall, host)
// time to client/server/cache/disk/ssd, plus the process's peak RSS.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/cluster.hpp"
#include "exp/cli.hpp"
#include "exp/gauge.hpp"
#include "mpiio/mpi.hpp"
#include "obs/profiler.hpp"
#include "sim/rng.hpp"

using namespace ibridge;

namespace {

constexpr std::int64_t kUnit = 64 * 1024;
constexpr std::int64_t kFileBytes = 2LL << 30;

sim::Task<> requester(mpiio::MpiContext ctx, mpiio::MpiFile file,
                      std::int64_t req_size, std::int64_t iters,
                      std::int64_t region) {
  for (std::int64_t k = 0; k < iters; ++k) {
    const std::int64_t off =
        (k * ctx.size() + ctx.rank()) * region % kFileBytes;
    co_await file.read_at(ctx.rank(), off, req_size);
    co_await ctx.barrier();
  }
}

sim::Task<> interferer(mpiio::MpiContext ctx, mpiio::MpiFile file,
                       int target_server, int servers, std::int64_t iters,
                       sim::Rng rng) {
  for (std::int64_t k = 0; k < iters; ++k) {
    const std::int64_t stripe = static_cast<std::int64_t>(
        rng.below(10'000) * static_cast<std::uint64_t>(servers) +
        static_cast<std::uint64_t>(target_server));
    co_await file.read_at(ctx.rank(), stripe * kUnit, kUnit);
  }
}

void print_snapshot(cluster::Cluster& c, const obs::SimProfiler& prof,
                    const exp::Stopwatch& wall, std::uint64_t* last_events,
                    double* last_wall) {
  const double secs = wall.seconds();
  const std::uint64_t events = prof.events_total();
  const double evps = secs > *last_wall
                          ? static_cast<double>(events - *last_events) /
                                (secs - *last_wall)
                          : 0.0;
  *last_events = events;
  *last_wall = secs;

  std::printf(
      "\n[t=%9.1f ms] events %10llu (%8.0f ev/s wall)  queue %zu "
      "(mean %.1f, peak %zu)  client MB %.1f\n",
      c.sim().now().to_millis(), static_cast<unsigned long long>(events),
      evps, prof.queue_depth_last(), prof.queue_depth_mean(),
      prof.queue_depth_peak(),
      static_cast<double>(c.client().bytes_completed()) / 1e6);
  std::printf("  %-5s %10s %10s %10s %10s %10s\n", "srv", "served MB",
              "p50 ms", "p99 ms", "mean ms", "heat ops");
  for (int i = 0; i < c.server_count(); ++i) {
    const auto& m = c.server(i).service_meter();
    std::printf("  %-5d %10.1f %10.3f %10.3f %10.3f %10llu\n", i,
                static_cast<double>(c.server(i).bytes_served().count()) / 1e6,
                m.p50_ms(), m.p99_ms(), m.mean_ms(),
                static_cast<unsigned long long>(
                    prof.heat_ops(static_cast<std::size_t>(i))));
  }
}

struct Ticker {
  cluster::Cluster& c;
  const obs::SimProfiler& prof;
  const exp::Stopwatch& wall;
  sim::SimTime interval;
  bool running = true;
  std::uint64_t last_events = 0;
  double last_wall = 0.0;

  void arm() {
    c.sim().schedule(interval, [this] {
      if (!running) return;
      print_snapshot(c, prof, wall, &last_events, &last_wall);
      arm();
    });
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "stock";
  std::int64_t requests = 32;
  int k = 4;
  bool fragment = true;
  bool wall_attr = false;
  std::int64_t interval_ms = 200;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "stock" || a == "ibridge" || a == "ssd-only") {
      mode = a;
    } else if (a == "--requests") {
      requests =
          exp::require_int("ibridge-top", "--requests", next(), 1, 100000000);
    } else if (a == "--k") {
      k = static_cast<int>(exp::require_int("ibridge-top", "--k", next(), 1, 7));
    } else if (a == "--no-fragment") {
      fragment = false;
    } else if (a == "--wall") {
      wall_attr = true;
    } else if (a == "--interval-ms") {
      interval_ms =
          exp::require_int("ibridge-top", "--interval-ms", next(), 1, 1000000);
    } else {
      std::fprintf(stderr,
                   "usage: ibridge-top [stock|ibridge|ssd-only] "
                   "[--requests N] [--k N] [--no-fragment] [--wall] "
                   "[--interval-ms M]\n");
      return 2;
    }
  }

  cluster::ClusterConfig cc;
  if (mode == "ibridge") {
    cc = cluster::ClusterConfig::with_ibridge();
  } else if (mode == "ssd-only") {
    cc = cluster::ClusterConfig::ssd_only();
  } else {
    cc = cluster::ClusterConfig::stock();
  }

  cluster::Cluster c(cc);
  obs::SimProfiler prof(/*enable_wall_timing=*/wall_attr);
  c.set_profiler(&prof);

  auto fh = c.create_file("data", kFileBytes);
  mpiio::MpiFile file(c.client(), fh);

  const std::int64_t req_size =
      static_cast<std::int64_t>(k) * kUnit + (fragment ? 1024 : 0);
  const std::int64_t region = cc.data_servers * kUnit;
  std::printf("ibridge-top: %s, %d servers, 16 ranks x %lld requests of "
              "%lld bytes%s\n",
              mode.c_str(), cc.data_servers, static_cast<long long>(requests),
              static_cast<long long>(req_size),
              fragment ? " (1 KB fragment on server k)" : "");

  const exp::Stopwatch wall;
  Ticker ticker{c, prof, wall, sim::SimTime::millis(interval_ms)};
  ticker.arm();

  mpiio::MpiEnvironment group(c.sim(), c.client(), 16);
  mpiio::MpiEnvironment noise(c.sim(), c.client(), 4);
  group.launch([&](mpiio::MpiContext ctx) {
    return requester(ctx, file, req_size, requests, region);
  });
  sim::Rng seed_gen(77);
  noise.launch([&](mpiio::MpiContext ctx) {
    return interferer(ctx, file, /*target_server=*/k % cc.data_servers,
                      cc.data_servers, requests * 2, seed_gen.fork());
  });
  c.sim().run_while_pending([&] { return group.finished(); });
  ticker.running = false;
  c.drain();

  print_snapshot(c, prof, wall, &ticker.last_events, &ticker.last_wall);

  std::printf("\nwhere the time went (simulated%s):\n",
              wall_attr ? " + host" : "");
  std::printf("  %-10s %12s %14s", "category", "events", "model ms");
  if (wall_attr) std::printf(" %14s", "host ms");
  std::printf("\n");
  for (std::size_t cat = 0; cat < prof.category_count(); ++cat) {
    const int ci = static_cast<int>(cat);
    std::printf("  %-10s %12llu %14.3f", prof.category_name(ci),
                static_cast<unsigned long long>(prof.events(ci)),
                static_cast<double>(prof.model_ns(ci)) / 1e6);
    if (wall_attr) {
      std::printf(" %14.3f", static_cast<double>(prof.wall_ns(ci)) / 1e6);
    }
    std::printf("\n");
  }
  std::printf("\nwall %.2f s, peak RSS %.1f MB\n", wall.seconds(),
              exp::peak_rss_mb());
  return 0;
}
