#!/usr/bin/env bash
# Checks that every C++ source file is clang-format clean (per .clang-format).
#
#   scripts/check-format.sh          check, print offending files
#   scripts/check-format.sh --fix    reformat in place
#
# Fails soft when clang-format is not installed (e.g. minimal CI or dev
# containers that only ship gcc): formatting is enforced by the CI format
# job, which does have it.
set -u

cd "$(dirname "$0")/.."

if ! command -v clang-format > /dev/null 2>&1; then
  echo "check-format: clang-format not found; skipping (soft pass)"
  exit 0
fi

mapfile -t files < <(find src tests bench tools examples \
  -name lint_fixtures -prune -o \
  \( -name '*.hpp' -o -name '*.cpp' \) -print | sort)

if [ "${1:-}" = "--fix" ]; then
  clang-format -i "${files[@]}"
  echo "check-format: reformatted ${#files[@]} files"
  exit 0
fi

bad=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run --Werror "$f" > /dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done

if [ "$bad" -ne 0 ]; then
  echo "check-format: run scripts/check-format.sh --fix"
  exit 1
fi
echo "check-format: ${#files[@]} files clean"
