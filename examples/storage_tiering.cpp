// Example: choosing a storage configuration for a small-write workload.
//
// Runs the BTIO solver dump (tiny strided writes) against the three storage
// configurations the paper compares — disk-only, SSD-only, and iBridge —
// and prints execution time, I/O time, and device traffic for each.  This
// reproduces the reasoning behind the paper's Figure 10: a small SSD used
// as a log-structured cache beats even putting ALL data on the SSD, because
// cache writes are sequential while direct datafile writes are random.
//
//   ./examples/storage_tiering [procs]
#include <cstdio>
#include <cstdlib>

#include "cluster/cluster.hpp"
#include "exp/cli.hpp"
#include "workloads/btio.hpp"

using namespace ibridge;

namespace {

void run(const char* label, const cluster::ClusterConfig& cc, int procs) {
  cluster::Cluster c(cc);
  workloads::BtIoConfig cfg;
  cfg.nprocs = procs;
  cfg.time_steps = 2;
  const auto r = run_btio(c, cfg);

  std::int64_t disk_bytes = 0, ssd_bytes = 0;
  for (int s = 0; s < c.server_count(); ++s) {
    disk_bytes += c.server(s).disk().bytes_written();
    if (c.server(s).ssd()) ssd_bytes += c.server(s).ssd()->bytes_written();
  }
  std::printf(
      "%-10s exec %6.2fs   I/O %6.3fs   disk-written %5.0f MB   "
      "ssd-written %5.0f MB\n",
      label, r.elapsed.to_seconds(), r.io_time.to_seconds(),
      static_cast<double>(disk_bytes) / 1e6,
      static_cast<double>(ssd_bytes) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  const int procs =
      argc > 1 ? static_cast<int>(ibridge::exp::require_int(
                     "storage_tiering", "procs", argv[1], 1, 4096))
               : 16;
  workloads::BtIoConfig probe;
  probe.nprocs = procs;
  std::printf("BTIO dump: %d processes, %lld-byte strided writes\n\n", procs,
              static_cast<long long>(probe.request_bytes()));

  run("disk-only", cluster::ClusterConfig::stock(), procs);
  run("SSD-only", cluster::ClusterConfig::ssd_only(), procs);
  run("iBridge", cluster::ClusterConfig::with_ibridge(), procs);

  std::printf(
      "\niBridge wins by absorbing the random writes into its sequential\n"
      "log and flushing them to the disks in sorted batches.\n");
  return 0;
}
