// Example: replaying a scientific checkpoint I/O trace.
//
// Synthesizes a trace with the access mix of the ALEGRA shock-physics code
// (Table I of the paper), classifies it, optionally saves it to the text
// format, and replays it through stock PVFS2 and through iBridge, printing
// the average request service time for each (the paper's Table III metric).
//
//   ./examples/checkpoint_replay [trace-file]
//
// When a trace file is given, it is read instead of synthesized; the format
// is one record per line: "R <offset> <size>" or "W <offset> <size>".
#include <cstdio>
#include <fstream>
#include <sstream>

#include "cluster/cluster.hpp"
#include "workloads/trace.hpp"

using namespace ibridge;

int main(int argc, char** argv) {
  constexpr std::int64_t kFile = 2LL * 1000 * 1000 * 1000;

  workloads::Trace trace;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    trace = workloads::read_trace(in);
    std::printf("loaded %zu records from %s\n", trace.size(), argv[1]);
  } else {
    workloads::TraceSynthesizer synth(workloads::alegra_2744_profile());
    trace = synth.generate(2000, kFile, /*seed=*/42);
    std::printf("synthesized %zu ALEGRA-like records\n", trace.size());
  }

  const auto stats = workloads::AccessClassifier().classify(trace);
  std::printf(
      "trace mix: %.1f%% unaligned, %.1f%% random, avg request %.1f KB\n\n",
      stats.unaligned_pct, stats.random_pct, stats.avg_size / 1024.0);

  workloads::ReplayConfig rc;
  rc.file_bytes = kFile;

  double stock_ms;
  {
    cluster::Cluster c(cluster::ClusterConfig::stock());
    const auto r = replay_trace(c, trace, rc);
    stock_ms = r.avg_request_ms;
    std::printf("stock PVFS2 : %7.2f ms/request  (%.1f MB moved)\n",
                stock_ms, static_cast<double>(r.bytes) / 1e6);
  }
  {
    cluster::Cluster c(cluster::ClusterConfig::with_ibridge());
    const auto r = replay_trace(c, trace, rc);
    std::printf("iBridge     : %7.2f ms/request  (%.0f%% faster)\n",
                r.avg_request_ms,
                100.0 * (1.0 - r.avg_request_ms / stock_ms));
    sim::Bytes ssd = sim::Bytes::zero();
    for (int s = 0; s < c.server_count(); ++s) {
      ssd += c.server(s).cache()->stats().ssd_bytes_served;
    }
    std::printf("              %.1f MB served by the SSDs\n",
                static_cast<double>(ssd.count()) / 1e6);
  }
  return 0;
}
