// Quickstart: the paper's headline effect in ~50 lines.
//
// Builds an 8-server simulated PVFS2 cluster and runs the mpi-io-test
// workload: aligned (64 KB) vs unaligned (65 KB) writes on the stock
// system, then the unaligned run again with iBridge enabled.  Unaligned
// access craters stock throughput; iBridge recovers a large share of it by
// serving the request fragments from the SSDs.  (Reads benefit too, but
// only once the cache is warm from earlier runs — see
// examples/checkpoint_replay.cpp.)
//
//   ./examples/quickstart
#include <cstdio>

#include "cluster/cluster.hpp"
#include "workloads/mpi_io_test.hpp"

using namespace ibridge;

namespace {

struct Result {
  double io_mbps;     ///< access phase
  double total_mbps;  ///< including the final write-back drain (the
                      ///< paper's conservative accounting)
};

Result run(const cluster::ClusterConfig& cc, std::int64_t request_size) {
  cluster::Cluster c(cc);
  workloads::MpiIoTestConfig w;
  w.nprocs = 64;
  w.request_size = request_size;
  w.file_bytes = 10LL * 1000 * 1000 * 1000;
  w.access_bytes = 400LL * 1000 * 1000;
  w.write = true;
  const auto r = run_mpi_io_test(c, w);
  return {r.mbps(),
          static_cast<double>(r.bytes) / 1e6 / r.elapsed.to_seconds()};
}

}  // namespace

int main() {
  std::printf("iBridge quickstart: 8 data servers, 64 KB striping, "
              "64 processes, writes\n\n");

  const Result aligned = run(cluster::ClusterConfig::stock(), 64 * 1024);
  std::printf("  stock,   64 KB aligned requests : %7.1f MB/s\n",
              aligned.io_mbps);

  const Result unaligned = run(cluster::ClusterConfig::stock(), 65 * 1024);
  std::printf(
      "  stock,   65 KB unaligned        : %7.1f MB/s  (%.0f%% of aligned)\n",
      unaligned.io_mbps, 100.0 * unaligned.io_mbps / aligned.io_mbps);

  const Result bridged =
      run(cluster::ClusterConfig::with_ibridge(), 65 * 1024);
  std::printf(
      "  iBridge, 65 KB unaligned        : %7.1f MB/s  (%+.0f%% vs stock; "
      "%+.0f%% counting the\n"
      "                                    end-of-run flush of cached "
      "fragments to the disks)\n",
      bridged.io_mbps, 100.0 * (bridged.io_mbps / unaligned.io_mbps - 1.0),
      100.0 * (bridged.total_mbps / unaligned.total_mbps - 1.0));

  std::printf("\nfragments served from the SSDs bridge the gap between "
              "unaligned and aligned access.\n");
  return 0;
}
