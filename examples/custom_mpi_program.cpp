// Example: writing your own MPI-IO program against the simulator.
//
// Shows the coroutine client API directly: ranks as coroutines, barriers,
// independent read/write at explicit offsets, and scraping per-server stats
// afterwards.  The program implements a two-phase pattern common in
// adaptive-mesh codes: every rank appends a variable-size block (unaligned
// on purpose), a barrier, then everyone reads its left neighbour's block.
//
//   ./examples/custom_mpi_program
//
// NOTE: rank bodies must not be *capturing lambda* coroutines — a lambda
// coroutine's frame references the closure, which dies when launch()
// returns.  Use a free function (as below) or a capture-free lambda and
// pass state through parameters.
#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"
#include "mpiio/mpi.hpp"

using namespace ibridge;

namespace {

struct Blocks {
  std::vector<std::int64_t> offset;
  std::vector<std::int64_t> size;
};

sim::Task<> rank_body(mpiio::MpiContext ctx, mpiio::MpiFile file,
                      const Blocks* blocks, stats::Summary* read_ms) {
  const int r = ctx.rank();

  // Phase 1: every rank writes its (unaligned) block.
  co_await file.write_at(r, blocks->offset[static_cast<size_t>(r)],
                         blocks->size[static_cast<size_t>(r)]);

  // Phase 2: synchronize, then read the left neighbour's block.
  co_await ctx.barrier();
  const int left = (r + ctx.size() - 1) % ctx.size();
  const sim::SimTime t =
      co_await file.read_at(r, blocks->offset[static_cast<size_t>(left)],
                            blocks->size[static_cast<size_t>(left)]);
  read_ms->add(t.to_millis());
}

}  // namespace

int main() {
  constexpr int kRanks = 32;
  cluster::Cluster c(cluster::ClusterConfig::with_ibridge());
  auto fh = c.create_file("mesh.dat", 1LL << 30);
  mpiio::MpiFile file(c.client(), fh);

  // Variable block sizes -> deliberately unaligned layout.
  Blocks blocks;
  std::int64_t cursor = 0;
  sim::Rng rng(2024);
  for (int r = 0; r < kRanks; ++r) {
    const std::int64_t size = 48 * 1024 + rng.uniform(0, 40 * 1024);
    blocks.offset.push_back(cursor);
    blocks.size.push_back(size);
    cursor += size;
  }

  stats::Summary read_ms;
  mpiio::MpiEnvironment env(c.sim(), c.client(), kRanks);
  env.launch([&](mpiio::MpiContext ctx) {
    return rank_body(ctx, file, &blocks, &read_ms);
  });
  c.sim().run_while_pending([&] { return env.finished(); });
  c.drain();

  std::printf("exchange of %d unaligned blocks finished at t=%s\n", kRanks,
              c.sim().now().to_string().c_str());
  std::printf("neighbour-read latency: mean %.2f ms, max %.2f ms\n",
              read_ms.mean(), read_ms.max());
  for (int s = 0; s < c.server_count(); ++s) {
    const auto* cache = c.server(s).cache();
    std::printf(
        "  server %d: %5.1f MB served, %4.1f MB via SSD, T=%.2f ms\n", s,
        static_cast<double>(c.server(s).bytes_served().count()) / 1e6,
        static_cast<double>(cache->stats().ssd_bytes_served.count()) / 1e6,
        c.server(s).current_t());
  }
  return 0;
}
